//! Pointer-write barriers: Figure 3 of the paper.
//!
//! Every store of a pointer into the heap goes through [`Heap::write_ptr`]
//! with a [`WriteMode`] saying how much dynamic work the store performs:
//!
//! - [`WriteMode::Counted`] — the Figure 3(a) reference-count update
//!   (unannotated pointers).
//! - [`WriteMode::Check`] — a Figure 3(b) annotation check
//!   (`sameregion` / `parentptr` / `traditional`), which aborts on failure
//!   and never touches a count.
//! - [`WriteMode::Safe`] — an annotated store whose check was eliminated
//!   statically by the rlang constraint inference (§4.3); just the store.
//! - [`WriteMode::Raw`] — all dynamic work disabled (the paper's `nc` and
//!   `norc` configurations; unsafe).

use crate::addr::Addr;
use crate::error::RtError;
use crate::heap::Heap;
use crate::layout::PtrKind;
use crate::region::{is_ancestor, RegionId, TRADITIONAL};
use crate::stats::AssignCategory;
use crate::trace::{mask, Event, NO_REGION};

/// How a heap pointer store is instrumented.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteMode {
    /// Unannotated pointer: maintain reference counts (Figure 3(a)).
    Counted,
    /// Annotated pointer: run the Figure 3(b) check for this annotation.
    Check(PtrKind),
    /// Annotated pointer whose check was statically eliminated.
    Safe,
    /// No dynamic work at all (unsafe configurations).
    Raw,
    /// Measurement mode for the differential harness: evaluate the
    /// Figure 3(b) predicate and tally its outcome per site (see
    /// [`crate::checkcount`]), but never abort — the store then performs
    /// the full Figure 3(a) reference-count update, so behaviour matches
    /// [`WriteMode::Counted`] exactly.
    CountedCheck(PtrKind),
}

impl Heap {
    /// Stores pointer `val` into word `field` of the object at `obj`,
    /// performing the dynamic work selected by `mode`.
    ///
    /// # Errors
    ///
    /// - [`RtError::WildPointer`] if `obj` is not a live object.
    /// - [`RtError::CheckFailed`] if a [`WriteMode::Check`] annotation check
    ///   fails — in RC this aborts the program.
    pub fn write_ptr(
        &mut self,
        obj: Addr,
        field: usize,
        val: Addr,
        mode: WriteMode,
    ) -> Result<(), RtError> {
        let slot = obj.offset(field);
        if !self.store.is_live(slot) {
            return Err(RtError::WildPointer { addr: slot });
        }
        match mode {
            WriteMode::Counted => self.write_counted(obj, slot, val),
            WriteMode::Check(kind) => self.write_checked(obj, field, slot, val, kind),
            WriteMode::Safe => {
                self.store.write(slot, val.raw());
                self.clock.charge(self.costs.store_plain);
                self.stats.record_assign(AssignCategory::Safe);
                Ok(())
            }
            WriteMode::Raw => {
                self.store.write(slot, val.raw());
                self.clock.charge(self.costs.store_plain);
                self.stats.assigns_raw += 1;
                Ok(())
            }
            WriteMode::CountedCheck(kind) => {
                let ok = self.eval_check(obj, val, kind)?;
                self.count_check(ok);
                if self.trace_on(mask::CHECK_RUN) {
                    let ev = Event::CheckRun { kind, site: self.trace_site, passed: ok };
                    self.trace_emit(ev);
                }
                if self.span_on() {
                    self.span_note_check(obj, kind, ok);
                }
                self.write_counted(obj, slot, val)
            }
        }
    }

    /// Figure 3(a): the straightforward reference-count update for
    /// `*p = newval`. The region of a null pointer is the distinguished
    /// top region, which never matches a real region, so null endpoints
    /// simply skip their half of the update.
    fn write_counted(&mut self, obj: Addr, slot: Addr, val: Addr) -> Result<(), RtError> {
        // Fault plane: a saturated count fails the store before any
        // mutation, so the heap stays consistent.
        self.fault_rc_tick(obj, val)?;
        let rp = self.region_of(obj)?;
        let old = Addr::from_raw(self.store.read(slot));
        let ro = self.try_region_of(old);
        let rn = self.try_region_of(val);
        let full = ro != rn;
        if self.trace_on(mask::RC_UPDATE) {
            let ev = Event::RcUpdate {
                from: rp.0,
                to: rn.map_or(NO_REGION, |r| r.0),
                full,
                site: self.trace_site,
            };
            self.trace_emit(ev);
        }
        if self.span_on() {
            self.span_note_rc(rp.0, full);
        }
        let mut decremented = false;
        if full {
            if let Some(ro) = ro {
                if ro != rp {
                    self.regions[ro.0 as usize].rc -= 1;
                    decremented = true;
                }
            }
            if let Some(rn) = rn {
                if rn != rp {
                    self.regions[rn.0 as usize].rc += 1;
                }
            }
            self.stats.rc_updates_full += 1;
            self.stats.rc_cycles += self.costs.rc_update_full;
            self.clock.charge(self.costs.rc_update_full);
        } else {
            self.stats.rc_updates_same += 1;
            self.stats.rc_cycles += self.costs.rc_update_same;
            self.clock.charge(self.costs.rc_update_same);
        }
        self.store.write(slot, val.raw());
        self.stats.record_assign(AssignCategory::Counted);
        if decremented {
            self.sweep_doomed();
        }
        self.sample_tick();
        Ok(())
    }

    /// Figure 3(b): the runtime checks for annotated pointers. "These
    /// checks ... do not need to read the value being overwritten."
    fn write_checked(
        &mut self,
        obj: Addr,
        field: usize,
        slot: Addr,
        val: Addr,
        kind: PtrKind,
    ) -> Result<(), RtError> {
        let ok = self.eval_check(obj, val, kind)?;
        self.count_check(ok);
        if self.trace_on(mask::CHECK_RUN) {
            let ev = Event::CheckRun { kind, site: self.trace_site, passed: ok };
            self.trace_emit(ev);
        }
        if self.span_on() {
            self.span_note_check(obj, kind, ok);
        }
        self.sample_tick();
        if !ok {
            return Err(RtError::CheckFailed { kind, obj, field, val });
        }
        self.store.write(slot, val.raw());
        self.stats.record_assign(AssignCategory::Checked);
        Ok(())
    }

    /// Evaluates the Figure 3(b) predicate for one annotated store,
    /// charging the per-kind statistics and cycle costs. The fault plane
    /// may force a `false` result (its counters and cycle charges are
    /// untouched, so the run stays comparable).
    fn eval_check(&mut self, obj: Addr, val: Addr, kind: PtrKind) -> Result<bool, RtError> {
        let ok = match kind {
            PtrKind::SameRegion => {
                self.stats.checks_sameregion += 1;
                self.stats.check_cycles += self.costs.check_sameregion;
                self.clock.charge(self.costs.check_sameregion);
                val.is_null() || self.region_of(val)? == self.region_of(obj)?
            }
            PtrKind::Traditional => {
                self.stats.checks_traditional += 1;
                self.stats.check_cycles += self.costs.check_traditional;
                self.clock.charge(self.costs.check_traditional);
                val.is_null() || self.region_of(val)? == TRADITIONAL
            }
            PtrKind::ParentPtr => {
                self.stats.checks_parentptr += 1;
                self.stats.check_cycles += self.costs.check_parentptr;
                self.clock.charge(self.costs.check_parentptr);
                val.is_null() || {
                    let rn = self.region_of(val)?;
                    let rp = self.region_of(obj)?;
                    is_ancestor(&self.regions, rn, rp)
                }
            }
            PtrKind::Counted => unreachable!("counted stores use write_counted"),
        };
        // Tick unconditionally so the fault schedule's ordinals are
        // independent of check outcomes.
        let forced = self.fault_check_tick();
        Ok(ok && !forced)
    }

    /// Reads a pointer field.
    ///
    /// # Errors
    ///
    /// Returns [`RtError::WildPointer`] if `obj` is not live.
    #[inline]
    pub fn read_ptr(&self, obj: Addr, field: usize) -> Result<Addr, RtError> {
        Ok(Addr::from_raw(self.read_word(obj, field)?))
    }

    /// The external reference count a region would need to reach zero
    /// before deletion, ignoring pins (test helper).
    pub fn region_heap_refs(&self, r: RegionId) -> i64 {
        let region = &self.regions[r.0 as usize];
        region.rc - region.pins
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::Heap;
    use crate::layout::{SlotKind, TypeLayout};

    /// struct node { T *q p0; T *q p1; int d; } with both pointers of the
    /// given kinds.
    fn node_ty(h: &mut Heap, k0: PtrKind, k1: PtrKind) -> crate::layout::TypeId {
        h.register_type(TypeLayout::new(
            "node",
            vec![SlotKind::Ptr(k0), SlotKind::Ptr(k1), SlotKind::Data],
        ))
    }

    #[test]
    fn counted_external_ref_blocks_delete() {
        let mut h = Heap::with_defaults();
        let ty = node_ty(&mut h, PtrKind::Counted, PtrKind::Counted);
        let r1 = h.new_region();
        let r2 = h.new_region();
        let a = h.ralloc(r1, ty).unwrap();
        let b = h.ralloc(r2, ty).unwrap();
        h.write_ptr(a, 0, b, WriteMode::Counted).unwrap();
        assert_eq!(h.region_rc(r2), 1);
        assert!(matches!(h.delete_region(r2), Err(RtError::DeleteWithLiveRefs { rc: 1, .. })));
        // Overwriting the pointer releases the reference.
        h.write_ptr(a, 0, Addr::NULL, WriteMode::Counted).unwrap();
        assert_eq!(h.region_rc(r2), 0);
        h.delete_region(r2).unwrap();
    }

    #[test]
    fn internal_refs_are_not_counted() {
        let mut h = Heap::with_defaults();
        let ty = node_ty(&mut h, PtrKind::Counted, PtrKind::Counted);
        let r = h.new_region();
        let a = h.ralloc(r, ty).unwrap();
        let b = h.ralloc(r, ty).unwrap();
        h.write_ptr(a, 0, b, WriteMode::Counted).unwrap();
        h.write_ptr(b, 0, a, WriteMode::Counted).unwrap(); // cycle, in-region
        assert_eq!(h.region_rc(r), 0, "cycles within a region are free");
        h.delete_region(r).unwrap();
    }

    #[test]
    fn overwrite_moves_count_between_regions() {
        let mut h = Heap::with_defaults();
        let ty = node_ty(&mut h, PtrKind::Counted, PtrKind::Counted);
        let (r1, r2, r3) = (h.new_region(), h.new_region(), h.new_region());
        let a = h.ralloc(r1, ty).unwrap();
        let b = h.ralloc(r2, ty).unwrap();
        let c = h.ralloc(r3, ty).unwrap();
        h.write_ptr(a, 0, b, WriteMode::Counted).unwrap();
        h.write_ptr(a, 0, c, WriteMode::Counted).unwrap();
        assert_eq!(h.region_rc(r2), 0);
        assert_eq!(h.region_rc(r3), 1);
    }

    #[test]
    fn unscan_releases_outgoing_refs() {
        let mut h = Heap::with_defaults();
        let ty = node_ty(&mut h, PtrKind::Counted, PtrKind::Counted);
        let r1 = h.new_region();
        let r2 = h.new_region();
        let a = h.ralloc(r1, ty).unwrap();
        let b = h.ralloc(r2, ty).unwrap();
        // r1 holds a pointer into r2.
        h.write_ptr(a, 0, b, WriteMode::Counted).unwrap();
        assert_eq!(h.region_rc(r2), 1);
        // Deleting r1 must unscan and release r2's count.
        h.delete_region(r1).unwrap();
        assert_eq!(h.region_rc(r2), 0);
        assert!(h.stats.unscan_words > 0);
        h.delete_region(r2).unwrap();
    }

    #[test]
    fn sameregion_check_passes_and_fails() {
        let mut h = Heap::with_defaults();
        let ty = node_ty(&mut h, PtrKind::SameRegion, PtrKind::SameRegion);
        let r1 = h.new_region();
        let r2 = h.new_region();
        let a = h.ralloc(r1, ty).unwrap();
        let b = h.ralloc(r1, ty).unwrap();
        let c = h.ralloc(r2, ty).unwrap();
        h.write_ptr(a, 0, b, WriteMode::Check(PtrKind::SameRegion)).unwrap();
        h.write_ptr(a, 1, Addr::NULL, WriteMode::Check(PtrKind::SameRegion)).unwrap();
        let err = h.write_ptr(a, 0, c, WriteMode::Check(PtrKind::SameRegion));
        assert!(matches!(err, Err(RtError::CheckFailed { kind: PtrKind::SameRegion, .. })));
        assert_eq!(h.stats.checks_sameregion, 3);
        // No reference counting happened.
        assert_eq!(h.region_rc(r1), 0);
        assert_eq!(h.region_rc(r2), 0);
    }

    #[test]
    fn traditional_check_passes_and_fails() {
        let mut h = Heap::with_defaults();
        let ty = node_ty(&mut h, PtrKind::Traditional, PtrKind::Traditional);
        let r = h.new_region();
        let a = h.ralloc(r, ty).unwrap();
        let t = h.m_alloc(ty, 1).unwrap(); // malloc heap = traditional region
        h.write_ptr(a, 0, t, WriteMode::Check(PtrKind::Traditional)).unwrap();
        let bad = h.ralloc(r, ty).unwrap();
        assert!(matches!(
            h.write_ptr(a, 0, bad, WriteMode::Check(PtrKind::Traditional)),
            Err(RtError::CheckFailed { kind: PtrKind::Traditional, .. })
        ));
    }

    #[test]
    fn parentptr_check_follows_hierarchy() {
        let mut h = Heap::with_defaults();
        let ty = node_ty(&mut h, PtrKind::ParentPtr, PtrKind::ParentPtr);
        let parent = h.new_region();
        let child = h.new_subregion(parent).unwrap();
        let sibling = h.new_subregion(parent).unwrap();
        let po = h.ralloc(parent, ty).unwrap();
        let co = h.ralloc(child, ty).unwrap();
        let so = h.ralloc(sibling, ty).unwrap();
        // child → parent: up the hierarchy, OK.
        h.write_ptr(co, 0, po, WriteMode::Check(PtrKind::ParentPtr)).unwrap();
        // child → child (same region): OK.
        h.write_ptr(co, 1, co, WriteMode::Check(PtrKind::ParentPtr)).unwrap();
        // child → sibling: not an ancestor, fails.
        assert!(matches!(
            h.write_ptr(co, 0, so, WriteMode::Check(PtrKind::ParentPtr)),
            Err(RtError::CheckFailed { kind: PtrKind::ParentPtr, .. })
        ));
        // parent → child: downward, fails.
        assert!(matches!(
            h.write_ptr(po, 0, co, WriteMode::Check(PtrKind::ParentPtr)),
            Err(RtError::CheckFailed { kind: PtrKind::ParentPtr, .. })
        ));
        assert_eq!(h.stats.checks_parentptr, 4);
    }

    #[test]
    fn annotated_writes_never_touch_counts() {
        let mut h = Heap::with_defaults();
        let ty = node_ty(&mut h, PtrKind::ParentPtr, PtrKind::SameRegion);
        let parent = h.new_region();
        let child = h.new_subregion(parent).unwrap();
        let po = h.ralloc(parent, ty).unwrap();
        let co = h.ralloc(child, ty).unwrap();
        h.write_ptr(co, 0, po, WriteMode::Check(PtrKind::ParentPtr)).unwrap();
        assert_eq!(h.region_rc(parent), 0, "parentptr refs are uncounted");
        // Child must still be deleted before parent (structural safety).
        assert!(h.delete_region(parent).is_err());
        h.delete_region(child).unwrap();
        h.delete_region(parent).unwrap();
    }

    #[test]
    fn safe_and_raw_modes_do_no_checking() {
        let mut h = Heap::with_defaults();
        let ty = node_ty(&mut h, PtrKind::SameRegion, PtrKind::SameRegion);
        let r1 = h.new_region();
        let r2 = h.new_region();
        let a = h.ralloc(r1, ty).unwrap();
        let c = h.ralloc(r2, ty).unwrap();
        // Safe mode trusts the static verifier; a violating store would not
        // be caught (that is the point of eliminating the check).
        h.write_ptr(a, 0, c, WriteMode::Safe).unwrap();
        h.write_ptr(a, 1, c, WriteMode::Raw).unwrap();
        assert_eq!(h.stats.assigns_safe, 1);
        assert_eq!(h.stats.assigns_raw, 1);
        assert_eq!(h.stats.checks_sameregion, 0);
        assert_eq!(h.stats.rc_updates_full, 0);
    }

    #[test]
    fn counted_write_costs_more_than_check() {
        let mut h = Heap::with_defaults();
        let ty = node_ty(&mut h, PtrKind::Counted, PtrKind::SameRegion);
        let r1 = h.new_region();
        let r2 = h.new_region();
        let a = h.ralloc(r1, ty).unwrap();
        let b = h.ralloc(r2, ty).unwrap();
        let before = h.clock.cycles();
        h.write_ptr(a, 0, b, WriteMode::Counted).unwrap();
        let counted_cost = h.clock.cycles() - before;
        let same = h.ralloc(r1, ty).unwrap();
        let before = h.clock.cycles();
        h.write_ptr(a, 1, same, WriteMode::Check(PtrKind::SameRegion)).unwrap();
        let check_cost = h.clock.cycles() - before;
        assert!(check_cost < counted_cost, "{check_cost} !< {counted_cost}");
    }
}
