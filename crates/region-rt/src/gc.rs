//! The conservative garbage-collection baseline ("GC" in Figure 7).
//!
//! The paper's GC configuration runs the benchmarks with "the Boehm-Weiser
//! conservative garbage collector v5.3": calls to `malloc` are replaced by
//! garbage-collected allocation and calls to `free` are removed. This module
//! implements a conservative mark–sweep collector in that spirit: roots are
//! raw machine words (no type information required); any word that decodes
//! to an address inside a live GC object — including interior pointers —
//! keeps that object alive; marking scans every word of reachable objects.

use std::collections::BTreeMap;

use crate::addr::{Addr, WORDS_PER_PAGE};
use crate::error::RtError;
use crate::heap::Heap;
use crate::layout::TypeId;
use crate::malloc::{size_class, SIZE_CLASSES};
use crate::page::PageOwner;

/// Metadata for one GC-heap object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcObj {
    /// Element type (retained for diagnostics; marking is conservative and
    /// does not consult it).
    pub ty: TypeId,
    /// Element count.
    pub count: u32,
    /// Allocated words (the size-class slot size, ≥ requested words).
    pub slot_words: u32,
    /// Payload words actually requested (what the live-word gauge counts;
    /// `slot_words - words` is this object's internal fragmentation).
    pub words: u32,
    /// Size class, or `None` for a dedicated page span.
    pub class: Option<u8>,
    /// For spans: page count.
    pub span_pages: u32,
    /// Mark bit.
    pub marked: bool,
    /// Source line that performed the allocation (0 = unattributed), for
    /// snapshot retained-word attribution.
    pub site: u32,
}

/// State of the GC baseline.
#[derive(Debug)]
pub struct GcState {
    /// Live objects keyed by start address — a BTreeMap so conservative
    /// interior-pointer resolution is a range query.
    objects: BTreeMap<u64, GcObj>,
    free_lists: Vec<Vec<Addr>>,
    /// Bump page/cursor for fresh small allocations.
    bump_page: Option<u32>,
    bump_cursor: usize,
    allocated_since_gc: u64,
    threshold: u64,
}

impl GcState {
    /// Creates GC state with the given heap-growth threshold in words.
    pub fn new(threshold: u64) -> GcState {
        GcState {
            objects: BTreeMap::new(),
            free_lists: vec![Vec::new(); SIZE_CLASSES.len()],
            bump_page: None,
            bump_cursor: WORDS_PER_PAGE,
            allocated_since_gc: 0,
            threshold,
        }
    }

    /// Rebuilds GC state from a snapshot (restore path). The bump page is
    /// left closed so the next allocation takes a fresh page instead of
    /// guessing at the old packing; `allocated_since_gc` restarts at 0
    /// (the snapshot does not record it, and a restored heap starting a
    /// fresh collection epoch is the conservative choice).
    pub(crate) fn from_snapshot(
        objects: BTreeMap<u64, GcObj>,
        free_lists: Vec<Vec<Addr>>,
        threshold: u64,
    ) -> GcState {
        debug_assert_eq!(free_lists.len(), SIZE_CLASSES.len());
        GcState {
            objects,
            free_lists,
            bump_page: None,
            bump_cursor: WORDS_PER_PAGE,
            allocated_since_gc: 0,
            threshold,
        }
    }

    /// Number of live GC objects.
    pub fn live_count(&self) -> usize {
        self.objects.len()
    }

    /// Live GC objects keyed by start address, in address order (the
    /// BTreeMap makes this deterministic), for the auditor and snapshots.
    pub fn live_objects(&self) -> impl Iterator<Item = (Addr, &GcObj)> + '_ {
        self.objects.iter().map(|(&a, o)| (Addr::from_raw(a), o))
    }

    /// Free slots per size class, parallel to
    /// [`SIZE_CLASSES`](crate::malloc::SIZE_CLASSES) — the snapshot's
    /// fragmentation breakdown for the GC heap.
    pub fn free_list_depths(&self) -> Vec<u32> {
        self.free_lists.iter().map(|l| l.len() as u32).collect()
    }

    /// Resolves a conservative root candidate to the start address of the
    /// live object containing it, if any.
    fn containing_object(&self, a: Addr) -> Option<Addr> {
        let (&start, obj) = self.objects.range(..=a.raw()).next_back()?;
        if a.raw() < start + obj.slot_words as u64 {
            Some(Addr::from_raw(start))
        } else {
            None
        }
    }
}

impl Heap {
    /// Garbage-collected allocation (the GC configuration's replacement for
    /// `malloc`). `free` has no counterpart; memory is reclaimed by
    /// [`Heap::gc_collect`].
    ///
    /// # Errors
    ///
    /// Returns [`RtError::OutOfMemory`] if the page budget is exhausted.
    pub fn gc_alloc(&mut self, ty: TypeId, count: u32) -> Result<Addr, RtError> {
        debug_assert!(count >= 1);
        self.fault_alloc_tick()?;
        let words = self.types.get(ty).size_words() * count as usize;
        let mut cycles = self.costs.gc_alloc;
        let addr = match size_class(words) {
            Some(class) => {
                let slot_words = SIZE_CLASSES[class];
                let addr = if let Some(a) = self.gc.free_lists[class].pop() {
                    a
                } else {
                    if self.gc.bump_cursor + slot_words > WORDS_PER_PAGE {
                        let (page, recycled) = self
                            .store
                            .acquire2(PageOwner::Gc)
                            .map_err(|e| self.fault_stamp_oom(e))?;
                        cycles +=
                            if recycled { self.costs.page_recycle } else { self.costs.page_fetch };
                        self.gc.bump_page = Some(page);
                        self.gc.bump_cursor = 0;
                    }
                    let page = self.gc.bump_page.expect("bump page just ensured");
                    let a = Addr::from_parts(page, self.gc.bump_cursor as u32);
                    self.gc.bump_cursor += slot_words;
                    a
                };
                for w in 0..slot_words {
                    self.store.write(addr.offset(w), 0);
                }
                self.gc.objects.insert(
                    addr.raw(),
                    GcObj {
                        ty,
                        count,
                        slot_words: slot_words as u32,
                        words: words as u32,
                        class: Some(class as u8),
                        span_pages: 0,
                        marked: false,
                        site: self.trace_site,
                    },
                );
                addr
            }
            None => {
                let span = words.div_ceil(WORDS_PER_PAGE);
                cycles += span as u64 * self.costs.page_fetch;
                let first = self
                    .store
                    .acquire_span(PageOwner::Gc, span)
                    .map_err(|e| self.fault_stamp_oom(e))?;
                let addr = Addr::from_parts(first, 0);
                self.gc.objects.insert(
                    addr.raw(),
                    GcObj {
                        ty,
                        count,
                        slot_words: (span * WORDS_PER_PAGE) as u32,
                        words: words as u32,
                        class: None,
                        span_pages: span as u32,
                        marked: false,
                        site: self.trace_site,
                    },
                );
                addr
            }
        };
        self.gc.allocated_since_gc += words as u64;
        self.stats.alloc_cycles += cycles;
        self.clock.charge(cycles);
        self.stats.objects_allocated += 1;
        self.stats.words_allocated += words as u64;
        self.stats.add_live(words as u64);
        if self.trace_on(crate::trace::mask::ALLOC) {
            // GC pages report the traditional region, like malloc's.
            let ev = crate::trace::Event::Alloc {
                region: crate::region::TRADITIONAL.0,
                site: self.trace_site,
                words: words as u32,
            };
            self.trace_emit(ev);
        }
        if self.span_on() {
            self.span_note_alloc(crate::region::TRADITIONAL.0, words as u32);
        }
        self.sample_tick();
        Ok(addr)
    }

    /// Whether enough allocation has happened since the last collection
    /// that the caller should supply roots and run [`Heap::gc_collect`].
    pub fn gc_should_collect(&self) -> bool {
        self.gc.allocated_since_gc >= self.gc.threshold
    }

    /// Runs a conservative mark–sweep collection from the given root words.
    /// Every root word (and every word of every reachable object) that
    /// decodes to an address inside a live GC object marks that object.
    /// Returns the number of objects reclaimed.
    pub fn gc_collect(&mut self, roots: &[u64]) -> usize {
        let mut marked_words: u64 = 0;
        let mut worklist: Vec<Addr> = Vec::new();

        // Mark phase: conservative root scan.
        marked_words += roots.len() as u64;
        for &w in roots {
            if let Some(start) = self.gc.containing_object(Addr::from_raw(w)) {
                let obj = self.gc.objects.get_mut(&start.raw()).expect("resolved above");
                if !obj.marked {
                    obj.marked = true;
                    worklist.push(start);
                }
            }
        }
        while let Some(a) = worklist.pop() {
            let slot_words = self.gc.objects[&a.raw()].slot_words as usize;
            marked_words += slot_words as u64;
            for w in 0..slot_words {
                let val = self.store.read(a.offset(w));
                if let Some(start) = self.gc.containing_object(Addr::from_raw(val)) {
                    let obj = self.gc.objects.get_mut(&start.raw()).expect("resolved above");
                    if !obj.marked {
                        obj.marked = true;
                        worklist.push(start);
                    }
                }
            }
        }

        // Sweep phase: unmarked objects go back to the free lists (or
        // release their page spans); marked objects are unmarked.
        let mut reclaimed = 0usize;
        let mut freed_words = 0u64;
        let all: Vec<u64> = self.gc.objects.keys().copied().collect();
        for key in all {
            let obj = self.gc.objects[&key];
            if obj.marked {
                self.gc.objects.get_mut(&key).expect("present").marked = false;
            } else {
                self.gc.objects.remove(&key);
                let addr = Addr::from_raw(key);
                match obj.class {
                    Some(class) => self.gc.free_lists[class as usize].push(addr),
                    None => {
                        for p in 0..obj.span_pages {
                            self.store.release(addr.page() + p);
                        }
                    }
                }
                reclaimed += 1;
                freed_words += obj.words as u64;
            }
        }

        let sweep_count = self.gc.live_count() + reclaimed;
        let cycles = marked_words * self.costs.gc_mark_per_word
            + sweep_count as u64 * self.costs.gc_sweep_per_obj;
        self.stats.gc_cycles += cycles;
        self.clock.charge(cycles);
        self.stats.gc_collections += 1;
        self.stats.gc_marked_words += marked_words;
        self.stats.gc_swept_objects += reclaimed as u64;
        if self.trace_on(crate::trace::mask::GC_COLLECTION) {
            let ev = crate::trace::Event::GcCollection {
                marked_words,
                swept_objects: reclaimed as u64,
            };
            self.trace_emit(ev);
        }
        if self.span_on() {
            self.span_note_gc(marked_words, reclaimed as u64);
        }
        // The gauge tracks requested words on both sides of an object's
        // lifetime, so the identity live_words == region + malloc + gc
        // requested words holds exactly (snapshots verify it).
        self.stats.sub_live(freed_words);
        self.gc.allocated_since_gc = 0;
        // Tick after the pause so a due sample attributes these gc_cycles
        // to the window that ends here.
        self.sample_tick();
        reclaimed
    }

    /// Live GC object count (test helper).
    pub fn gc_live_count(&self) -> usize {
        self.gc.live_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::TypeLayout;

    fn setup() -> (Heap, TypeId) {
        let mut h = Heap::with_defaults();
        let ty = h.register_type(TypeLayout::data("cell", 2));
        (h, ty)
    }

    #[test]
    fn unreachable_objects_are_reclaimed() {
        let (mut h, ty) = setup();
        let a = h.gc_alloc(ty, 1).unwrap();
        let _b = h.gc_alloc(ty, 1).unwrap();
        // Only `a` is a root.
        let reclaimed = h.gc_collect(&[a.raw()]);
        assert_eq!(reclaimed, 1);
        assert_eq!(h.gc_live_count(), 1);
    }

    #[test]
    fn reachability_is_transitive() {
        let (mut h, ty) = setup();
        let a = h.gc_alloc(ty, 1).unwrap();
        let b = h.gc_alloc(ty, 1).unwrap();
        let c = h.gc_alloc(ty, 1).unwrap();
        h.write_int(a, 0, b.raw()).unwrap();
        h.write_int(b, 0, c.raw()).unwrap();
        let reclaimed = h.gc_collect(&[a.raw()]);
        assert_eq!(reclaimed, 0);
        assert_eq!(h.gc_live_count(), 3);
        // Break the chain: b and c die.
        h.write_int(a, 0, 0).unwrap();
        assert_eq!(h.gc_collect(&[a.raw()]), 2);
    }

    #[test]
    fn interior_pointers_keep_objects_alive() {
        let (mut h, ty) = setup();
        let a = h.gc_alloc(ty, 1).unwrap();
        // A pointer into the middle of `a`.
        let interior = a.offset(1).raw();
        assert_eq!(h.gc_collect(&[interior]), 0);
        assert_eq!(h.gc_live_count(), 1);
    }

    #[test]
    fn conservative_marking_tolerates_integers() {
        let (mut h, ty) = setup();
        let a = h.gc_alloc(ty, 1).unwrap();
        // Garbage root words (not GC addresses) are ignored.
        assert_eq!(h.gc_collect(&[a.raw(), 0, u64::MAX, 12345]), 0);
        assert_eq!(h.gc_live_count(), 1);
    }

    #[test]
    fn cycles_are_collected() {
        let (mut h, ty) = setup();
        let a = h.gc_alloc(ty, 1).unwrap();
        let b = h.gc_alloc(ty, 1).unwrap();
        h.write_int(a, 0, b.raw()).unwrap();
        h.write_int(b, 0, a.raw()).unwrap();
        assert_eq!(h.gc_collect(&[]), 2, "unlike refcounting, GC reclaims cycles");
    }

    #[test]
    fn free_slots_are_reused() {
        let (mut h, ty) = setup();
        let a = h.gc_alloc(ty, 1).unwrap();
        h.gc_collect(&[]); // everything dies
        let b = h.gc_alloc(ty, 1).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn should_collect_follows_threshold() {
        let mut h = Heap::new(crate::heap::HeapConfig {
            gc_threshold_words: 8,
            ..Default::default()
        });
        let ty = h.register_type(TypeLayout::data("cell", 2));
        assert!(!h.gc_should_collect());
        for _ in 0..4 {
            h.gc_alloc(ty, 1).unwrap();
        }
        assert!(h.gc_should_collect());
        h.gc_collect(&[]);
        assert!(!h.gc_should_collect());
    }
}
