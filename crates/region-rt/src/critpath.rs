//! Work/span critical-path analysis over per-task reports.
//!
//! The classic work/span model (Brent; Cilk's instrumentation) applied
//! to the spawn/join task tree a parallel region program leaves behind
//! in its [`TaskReport`]s:
//!
//! * **work** — total charged cycles across every task (what one
//!   processor would execute);
//! * **span** — the longest dependency chain through the spawn/join
//!   tree (what infinitely many processors could not beat);
//! * **ideal parallelism** — work / span, the ceiling on any
//!   scheduler's speedup.
//!
//! The span is computed by simulating an ideal schedule: each task's
//! structural scheduler events ([`SchedEventKind::is_structural`]) are
//! replayed on the task's *local* cycle axis; a `spawn` forks the chain,
//! a `join` takes the latest-arriving arm. By construction the returned
//! [`CritPath::path`] is a gap-free chain of per-task cycle intervals
//! whose lengths sum exactly to the span, so `work − span` is exactly
//! the overlappable (off-path) time — the identity the parallel-matrix
//! attribution gates rely on.
//!
//! All arithmetic is integer (charged cycles and permille ratios), so
//! reports are byte-deterministic wherever the underlying run is.

use crate::json::Json;
use crate::shard::{SchedEventKind, ShardId, TaskReport};

/// Guard against a corrupt spawn tree sending the simulator into
/// unbounded recursion; real programs nest spawns far shallower.
const MAX_DEPTH: usize = 4096;

/// One link of the critical path: task `task` executing its local cycle
/// interval `[from_local, to_local)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathSeg {
    /// The task executing this link.
    pub task: ShardId,
    /// Start of the interval on the task's own cycle axis.
    pub from_local: u64,
    /// End of the interval (exclusive).
    pub to_local: u64,
}

impl PathSeg {
    /// The link's length in charged cycles.
    pub fn len(&self) -> u64 {
        self.to_local - self.from_local
    }

    /// Whether the link is empty.
    pub fn is_empty(&self) -> bool {
        self.from_local == self.to_local
    }

    /// Report encoding, field order fixed for byte-determinism.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("task", Json::U(self.task.0 as u64)),
            ("from", Json::U(self.from_local)),
            ("to", Json::U(self.to_local)),
        ])
    }
}

/// One task's share of the work/span decomposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskBreakdown {
    /// The task.
    pub id: ShardId,
    /// Its spawning task (itself for the root).
    pub parent: ShardId,
    /// Global spawn ordinal (0 for the root).
    pub seq: u64,
    /// Source line of the `spawn` that created it (0 for the root).
    pub spawn_site: u32,
    /// Charged cycles the task executed.
    pub cycles: u64,
    /// Cycles on the critical path.
    pub on_path_cycles: u64,
    /// Cycles off the path (`cycles − on_path_cycles`): overlappable
    /// with the path under an ideal schedule.
    pub off_path_cycles: u64,
    /// Shared-clock time the task spent not running under the schedule
    /// that was actually observed (from its [`SchedLog`]).
    ///
    /// [`SchedLog`]: crate::shard::SchedLog
    pub blocked_cycles: u64,
    /// Whether any of the task's cycles are on the path.
    pub on_path: bool,
}

impl TaskBreakdown {
    /// Report encoding, field order fixed for byte-determinism.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("task", Json::U(self.id.0 as u64)),
            ("parent", Json::U(self.parent.0 as u64)),
            ("seq", Json::U(self.seq)),
            ("spawn_site", Json::U(self.spawn_site as u64)),
            ("cycles", Json::U(self.cycles)),
            ("on_path_cycles", Json::U(self.on_path_cycles)),
            ("off_path_cycles", Json::U(self.off_path_cycles)),
            ("blocked_cycles", Json::U(self.blocked_cycles)),
            ("on_path", Json::Bool(self.on_path)),
        ])
    }
}

/// The work/span decomposition of one parallel run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CritPath {
    /// Total work: Σ per-task charged cycles.
    pub work: u64,
    /// The critical path length (== Σ [`CritPath::path`] segment
    /// lengths, by construction).
    pub span: u64,
    /// Per-task breakdowns, in report order (root first).
    pub tasks: Vec<TaskBreakdown>,
    /// The critical path, root start → run end, adjacent same-task
    /// links merged.
    pub path: Vec<PathSeg>,
}

impl CritPath {
    /// Ideal parallelism, work/span, in permille (integer, so reports
    /// stay byte-deterministic; 1000 = perfectly serial). 0 when the
    /// span is empty.
    pub fn ideal_parallelism_milli(&self) -> u64 {
        if self.span == 0 {
            return 0;
        }
        self.work * 1000 / self.span
    }

    /// Critical-path cycles executed by the root task — the serial
    /// fraction no schedule can overlap away (Amdahl's bound, measured).
    pub fn root_serial(&self) -> u64 {
        self.path.iter().filter(|s| s.task == ShardId::ROOT).map(PathSeg::len).sum()
    }

    /// Off-path cycles (`work − span`): the time an ideal schedule
    /// overlaps with the path.
    pub fn overlapped(&self) -> u64 {
        self.work - self.span
    }

    /// Observed blocked time summed over every task.
    pub fn blocked_total(&self) -> u64 {
        self.tasks.iter().map(|t| t.blocked_cycles).sum()
    }

    /// Report encoding, field order fixed for byte-determinism.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("work", Json::U(self.work)),
            ("span", Json::U(self.span)),
            ("ideal_parallelism_milli", Json::U(self.ideal_parallelism_milli())),
            ("root_serial", Json::U(self.root_serial())),
            ("overlapped", Json::U(self.overlapped())),
            ("blocked_total", Json::U(self.blocked_total())),
            ("tasks", Json::A(self.tasks.iter().map(TaskBreakdown::to_json).collect())),
            ("path", Json::A(self.path.iter().map(PathSeg::to_json).collect())),
        ])
    }
}

struct Ctx<'a> {
    reports: &'a [TaskReport],
    /// Children of each report (indices into `reports`), in spawn
    /// (`Handoff::seq`) order.
    children: Vec<Vec<usize>>,
}

/// Simulates task `i` starting at absolute ideal time `start`; returns
/// the time its chain finishes and the path realizing it (as segments
/// from `start` to the finish — the caller prepends its own prefix).
fn simulate(ctx: &Ctx, i: usize, start: u64, depth: usize) -> Result<(u64, Vec<PathSeg>), String> {
    if depth > MAX_DEPTH {
        return Err(format!("critpath: spawn tree deeper than {MAX_DEPTH}"));
    }
    let r = &ctx.reports[i];
    let id = r.id;
    let mut finish = start;
    let mut path: Vec<PathSeg> = Vec::new();
    // Arms a pending join must wait for: (child finish, chain to it).
    let mut pending: Vec<(u64, Vec<PathSeg>)> = Vec::new();
    let mut last_local = 0u64;
    let mut nth_spawn = 0u32;
    let mut ended = false;
    for ev in r.sched.events.iter().filter(|e| e.kind.is_structural()) {
        if ev.local < last_local {
            return Err(format!(
                "critpath: task {} events go backwards ({} after {last_local})",
                id.0, ev.local
            ));
        }
        let advance =
            |finish: &mut u64, path: &mut Vec<PathSeg>, last_local: &mut u64, to: u64| {
                if to > *last_local {
                    *finish += to - *last_local;
                    path.push(PathSeg { task: id, from_local: *last_local, to_local: to });
                    *last_local = to;
                }
            };
        match ev.kind {
            SchedEventKind::TaskStart => {}
            SchedEventKind::Spawn { nth } => {
                if nth != nth_spawn {
                    return Err(format!(
                        "critpath: task {} spawn ordinal {nth} out of order (expected {nth_spawn})",
                        id.0
                    ));
                }
                let child = *ctx
                    .children
                    .get(i)
                    .and_then(|c| c.get(nth as usize))
                    .ok_or_else(|| {
                        format!("critpath: task {} spawn #{nth} has no matching handoff", id.0)
                    })?;
                advance(&mut finish, &mut path, &mut last_local, ev.local);
                let (cf, cpath) = simulate(ctx, child, finish, depth + 1)?;
                let mut chain = path.clone();
                chain.extend(cpath);
                pending.push((cf, chain));
                nth_spawn += 1;
            }
            SchedEventKind::JoinWaitBegin { .. } => {
                advance(&mut finish, &mut path, &mut last_local, ev.local);
                // The latest arm wins; ties go to the parent, then to
                // the earliest-spawned child (strict `>` on an in-order
                // scan encodes both).
                for (cf, chain) in pending.drain(..) {
                    if cf > finish {
                        finish = cf;
                        path = chain;
                    }
                }
            }
            SchedEventKind::TaskEnd => {
                if ev.local < r.cycles {
                    return Err(format!(
                        "critpath: task {} ended at {} but reports {} cycles",
                        id.0, ev.local, r.cycles
                    ));
                }
                advance(&mut finish, &mut path, &mut last_local, ev.local);
                ended = true;
            }
            SchedEventKind::JoinWaitEnd => {}
            // Structural filter above excludes slice events.
            _ => {}
        }
    }
    if !ended {
        return Err(format!("critpath: task {} has no task_end event", id.0));
    }
    if !pending.is_empty() {
        return Err(format!(
            "critpath: task {} ended with {} unjoined children",
            id.0,
            pending.len()
        ));
    }
    if nth_spawn as usize != ctx.children[i].len() {
        return Err(format!(
            "critpath: task {} stamped {} spawns but has {} handoffs",
            id.0,
            nth_spawn,
            ctx.children[i].len()
        ));
    }
    Ok((finish, path))
}

/// Analyzes per-task reports (root first, as produced by the
/// interpreter) into the work/span decomposition.
///
/// # Errors
///
/// Returns a message if the reports are not a well-formed spawn/join
/// tree: missing root, dangling parents, unmatched spawn events,
/// missing `task_end`, or non-monotone event streams. The fuzz oracle
/// treats any such error as a `task_report_divergence`.
pub fn analyze(reports: &[TaskReport]) -> Result<CritPath, String> {
    let root = reports.first().ok_or("critpath: no task reports")?;
    if !root.is_root() {
        return Err(format!("critpath: first report is task {}, not the root", root.id.0));
    }
    let mut index: Vec<Option<usize>> = Vec::new();
    for (i, r) in reports.iter().enumerate() {
        let slot = r.id.0 as usize;
        if slot >= index.len() {
            index.resize(slot + 1, None);
        }
        if index[slot].replace(i).is_some() {
            return Err(format!("critpath: task {} reported twice", r.id.0));
        }
    }
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); reports.len()];
    for (i, r) in reports.iter().enumerate() {
        if r.is_root() {
            continue;
        }
        let p = index
            .get(r.parent.0 as usize)
            .copied()
            .flatten()
            .ok_or_else(|| format!("critpath: task {} has unknown parent {}", r.id.0, r.parent.0))?;
        children[p].push(i);
    }
    for c in &mut children {
        c.sort_by_key(|&i| reports[i].seq);
    }
    let (span, raw_path) = simulate(&Ctx { reports, children }, 0, 0, 0)?;
    debug_assert_eq!(
        raw_path.iter().map(PathSeg::len).sum::<u64>(),
        span,
        "path segments must sum to the span by construction"
    );
    // Merge adjacent same-task links so the rendered path reads as one
    // interval per scheduling episode.
    let mut path: Vec<PathSeg> = Vec::new();
    for seg in raw_path.into_iter().filter(|s| !s.is_empty()) {
        match path.last_mut() {
            Some(last) if last.task == seg.task && last.to_local == seg.from_local => {
                last.to_local = seg.to_local;
            }
            _ => path.push(seg),
        }
    }
    let mut on_path: Vec<u64> = vec![0; reports.len()];
    for seg in &path {
        if let Some(i) = index.get(seg.task.0 as usize).copied().flatten() {
            on_path[i] += seg.len();
        }
    }
    let work = reports.iter().map(|r| r.cycles).sum();
    let tasks = reports
        .iter()
        .enumerate()
        .map(|(i, r)| TaskBreakdown {
            id: r.id,
            parent: r.parent,
            seq: r.seq,
            spawn_site: r.spawn_site,
            cycles: r.cycles,
            on_path_cycles: on_path[i],
            off_path_cycles: r.cycles.saturating_sub(on_path[i]),
            blocked_cycles: r.sched.blocked_cycles,
            on_path: on_path[i] > 0,
        })
        .collect();
    Ok(CritPath { work, span, tasks, path })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::RegionId;
    use crate::shard::{SchedEvent, SchedLog};
    use crate::stats::Stats;

    fn report(
        id: u32,
        parent: u32,
        seq: u64,
        cycles: u64,
        events: Vec<(u64, SchedEventKind)>,
    ) -> TaskReport {
        TaskReport {
            id: ShardId(id),
            parent: ShardId(parent),
            seq,
            region: RegionId(0),
            spawn_site: 10 + id,
            cycles,
            steps: cycles,
            stats: Stats::new(),
            sched: SchedLog {
                events: events
                    .into_iter()
                    .map(|(local, kind)| SchedEvent { at: 0, local, kind })
                    .collect(),
                ..SchedLog::default()
            },
            timeline: None,
            tracer: None,
        }
    }

    fn leaf(id: u32, parent: u32, seq: u64, cycles: u64) -> TaskReport {
        report(
            id,
            parent,
            seq,
            cycles,
            vec![(0, SchedEventKind::TaskStart), (cycles, SchedEventKind::TaskEnd)],
        )
    }

    #[test]
    fn sequential_run_is_all_span() {
        let r = vec![leaf(0, 0, 0, 40)];
        let cp = analyze(&r).unwrap();
        assert_eq!(cp.work, 40);
        assert_eq!(cp.span, 40);
        assert_eq!(cp.ideal_parallelism_milli(), 1000);
        assert_eq!(cp.path, vec![PathSeg { task: ShardId::ROOT, from_local: 0, to_local: 40 }]);
    }

    #[test]
    fn long_child_dominates_the_path() {
        // Root: 10 cycles, spawn c1; 10 more, spawn c2; 10 more, join;
        // 10 more, end (40 total). c1 runs 50, c2 runs 5.
        let root = report(
            0,
            0,
            0,
            40,
            vec![
                (0, SchedEventKind::TaskStart),
                (10, SchedEventKind::Spawn { nth: 0 }),
                (20, SchedEventKind::Spawn { nth: 1 }),
                (30, SchedEventKind::JoinWaitBegin { pending: 2 }),
                (30, SchedEventKind::JoinWaitEnd),
                (40, SchedEventKind::TaskEnd),
            ],
        );
        let r = vec![root, leaf(1, 0, 0, 50), leaf(2, 0, 1, 5)];
        let cp = analyze(&r).unwrap();
        assert_eq!(cp.work, 95);
        // Path: root 0..10, c1 0..50, root 30..40 = 70.
        assert_eq!(cp.span, 70);
        assert_eq!(
            cp.path,
            vec![
                PathSeg { task: ShardId(0), from_local: 0, to_local: 10 },
                PathSeg { task: ShardId(1), from_local: 0, to_local: 50 },
                PathSeg { task: ShardId(0), from_local: 30, to_local: 40 },
            ]
        );
        assert_eq!(cp.root_serial(), 20);
        assert_eq!(cp.overlapped(), 25);
        assert_eq!(cp.ideal_parallelism_milli(), 95 * 1000 / 70);
        // The per-task split covers the span exactly.
        let on: u64 = cp.tasks.iter().map(|t| t.on_path_cycles).sum();
        assert_eq!(on, cp.span);
        assert!(cp.tasks[1].on_path && !cp.tasks[2].on_path);
        assert_eq!(cp.tasks[2].off_path_cycles, 5);
    }

    #[test]
    fn parent_wins_path_ties() {
        // Child finishes exactly when the parent reaches the join: the
        // parent's own chain is reported as the path.
        let root = report(
            0,
            0,
            0,
            30,
            vec![
                (0, SchedEventKind::TaskStart),
                (10, SchedEventKind::Spawn { nth: 0 }),
                (30, SchedEventKind::JoinWaitBegin { pending: 1 }),
                (30, SchedEventKind::JoinWaitEnd),
                (30, SchedEventKind::TaskEnd),
            ],
        );
        let r = vec![root, leaf(1, 0, 0, 20)];
        let cp = analyze(&r).unwrap();
        assert_eq!(cp.span, 30);
        assert_eq!(cp.path, vec![PathSeg { task: ShardId(0), from_local: 0, to_local: 30 }]);
        assert!(!cp.tasks[1].on_path);
    }

    #[test]
    fn nested_spawns_chain_through_both_levels() {
        // Root spawns c1; c1 spawns c2 (the grandchild does the work).
        let root = report(
            0,
            0,
            0,
            10,
            vec![
                (0, SchedEventKind::TaskStart),
                (5, SchedEventKind::Spawn { nth: 0 }),
                (8, SchedEventKind::JoinWaitBegin { pending: 1 }),
                (8, SchedEventKind::JoinWaitEnd),
                (10, SchedEventKind::TaskEnd),
            ],
        );
        let mid = report(
            1,
            0,
            0,
            6,
            vec![
                (0, SchedEventKind::TaskStart),
                (2, SchedEventKind::Spawn { nth: 0 }),
                (4, SchedEventKind::JoinWaitBegin { pending: 1 }),
                (4, SchedEventKind::JoinWaitEnd),
                (6, SchedEventKind::TaskEnd),
            ],
        );
        let r = vec![root, mid, leaf(2, 1, 1, 100)];
        let cp = analyze(&r).unwrap();
        assert_eq!(cp.work, 116);
        // root 0..5, mid 0..2, c2 0..100, mid 4..6, root 8..10.
        assert_eq!(cp.span, 5 + 2 + 100 + 2 + 2);
        assert!(cp.tasks.iter().all(|t| t.on_path));
    }

    #[test]
    fn malformed_trees_error_instead_of_panicking() {
        // Spawn event with no handoff behind it.
        let root = report(
            0,
            0,
            0,
            10,
            vec![
                (0, SchedEventKind::TaskStart),
                (5, SchedEventKind::Spawn { nth: 0 }),
                (10, SchedEventKind::TaskEnd),
            ],
        );
        assert!(analyze(&[root]).unwrap_err().contains("no matching handoff"));
        // Missing task_end.
        let stub = report(0, 0, 0, 10, vec![(0, SchedEventKind::TaskStart)]);
        assert!(analyze(&[stub]).unwrap_err().contains("no task_end"));
        // Unjoined child at end.
        let root = report(
            0,
            0,
            0,
            10,
            vec![
                (0, SchedEventKind::TaskStart),
                (5, SchedEventKind::Spawn { nth: 0 }),
                (10, SchedEventKind::TaskEnd),
            ],
        );
        let r = vec![root, leaf(1, 0, 0, 3)];
        assert!(analyze(&r).unwrap_err().contains("unjoined"));
        // No reports at all.
        assert!(analyze(&[]).is_err());
    }

    #[test]
    fn report_json_is_deterministic() {
        let root = report(
            0,
            0,
            0,
            30,
            vec![
                (0, SchedEventKind::TaskStart),
                (10, SchedEventKind::Spawn { nth: 0 }),
                (20, SchedEventKind::JoinWaitBegin { pending: 1 }),
                (20, SchedEventKind::JoinWaitEnd),
                (30, SchedEventKind::TaskEnd),
            ],
        );
        let r = vec![root, leaf(1, 0, 0, 25)];
        let a = analyze(&r).unwrap().to_json().render();
        let b = analyze(&r).unwrap().to_json().render();
        assert_eq!(a, b);
        assert!(a.contains(r#""work":55"#) && a.contains(r#""span":"#));
    }
}
