//! Per-site dynamic check counters for the differential harness.
//!
//! The rlang inference (§4.3) removes a `chk` only when it can prove the
//! check never *fails*. The conformance oracle in `rc-fuzz` tests exactly
//! that claim: it reruns the *uninferred* program with counting enabled
//! and asserts that every site the inference eliminated has a dynamic
//! failure count of zero. To observe failures without changing program
//! behaviour, counting rides on [`crate::WriteMode::CountedCheck`]: the
//! store evaluates the annotation predicate, records the outcome here,
//! and then performs the full Figure 3(a) reference-count update — so a
//! counting run is observationally identical to the paper's `nq`
//! configuration (no aborts, counts maintained, heap audit-clean).
//!
//! Attribution uses the front end's check-site ids (the same `SiteId`
//! space rlang's verdicts are keyed by), published through
//! [`Heap::set_check_site`] — deliberately separate from the telemetry
//! `trace_site`, which carries source *lines* and may be off.

use std::collections::BTreeMap;

use crate::heap::Heap;

/// The distinguished "no site" attribution value (stores the front end
/// did not mint a check site for, e.g. internal harness writes).
pub const NO_CHECK_SITE: u32 = u32::MAX;

/// Dynamic outcome tallies for one check site.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SiteCheckCounts {
    /// Times the check predicate was evaluated.
    pub runs: u64,
    /// Times it evaluated to false (the check would have fired/aborted).
    pub fails: u64,
}

/// Per-site tallies of annotation-check evaluations, keyed by front-end
/// check-site id. Iteration order is sorted (BTreeMap), so reports built
/// from a counter are deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckCounter {
    counts: BTreeMap<u32, SiteCheckCounts>,
}

impl CheckCounter {
    /// An empty counter.
    pub fn new() -> CheckCounter {
        CheckCounter::default()
    }

    /// Records one predicate evaluation at `site`.
    pub fn record(&mut self, site: u32, passed: bool) {
        let c = self.counts.entry(site).or_default();
        c.runs += 1;
        if !passed {
            c.fails += 1;
        }
    }

    /// Times the check at `site` was evaluated (0 for unseen sites).
    pub fn runs(&self, site: u32) -> u64 {
        self.counts.get(&site).map_or(0, |c| c.runs)
    }

    /// Times the check at `site` failed (0 for unseen sites).
    pub fn fails(&self, site: u32) -> u64 {
        self.counts.get(&site).map_or(0, |c| c.fails)
    }

    /// Total evaluations across all sites.
    pub fn total_runs(&self) -> u64 {
        self.counts.values().map(|c| c.runs).sum()
    }

    /// Total failures across all sites.
    pub fn total_fails(&self) -> u64 {
        self.counts.values().map(|c| c.fails).sum()
    }

    /// Sites with at least one failure, ascending.
    pub fn fired_sites(&self) -> Vec<u32> {
        self.counts.iter().filter(|(_, c)| c.fails > 0).map(|(&s, _)| s).collect()
    }

    /// All `(site, counts)` pairs, ascending by site.
    pub fn iter(&self) -> impl Iterator<Item = (u32, SiteCheckCounts)> + '_ {
        self.counts.iter().map(|(&s, &c)| (s, c))
    }

    /// Number of distinct sites observed.
    pub fn site_count(&self) -> usize {
        self.counts.len()
    }

    /// Folds another counter in, summing per-site tallies (shard → global
    /// roll-up; see [`crate::shard`]). Site ids share one front-end space
    /// across shards, so union-by-site is exact; commutative and
    /// associative because `+` is.
    pub fn merge(&mut self, other: &CheckCounter) {
        for (site, c) in other.iter() {
            let e = self.counts.entry(site).or_default();
            e.runs += c.runs;
            e.fails += c.fails;
        }
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }
}

impl Heap {
    /// Starts recording per-site check outcomes into a fresh counter.
    /// Replaces any existing counter.
    pub fn enable_check_counting(&mut self) {
        self.check_counter = Some(Box::new(CheckCounter::new()));
    }

    /// Stops counting and detaches the counter, returning it for oracle
    /// queries. `None` if counting was never enabled.
    pub fn take_check_counter(&mut self) -> Option<Box<CheckCounter>> {
        self.check_counter.take()
    }

    /// Whether check counting is on.
    pub fn check_counting_enabled(&self) -> bool {
        self.check_counter.is_some()
    }

    /// Publishes the front-end check-site id for subsequent counted
    /// checks ([`NO_CHECK_SITE`] = unattributed). One store each; the
    /// interpreter calls this before annotated pointer stores.
    #[inline(always)]
    pub fn set_check_site(&mut self, site: u32) {
        self.check_site = site;
    }

    /// Tallies one predicate outcome against the current check site. With
    /// counting off this is a single branch.
    #[inline]
    pub(crate) fn count_check(&mut self, passed: bool) {
        if let Some(c) = self.check_counter.as_mut() {
            c.record(self.check_site, passed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Addr;
    use crate::layout::{PtrKind, SlotKind, TypeLayout};
    use crate::rcops::WriteMode;

    #[test]
    fn counter_tallies_runs_and_fails_per_site() {
        let mut c = CheckCounter::new();
        c.record(3, true);
        c.record(3, true);
        c.record(3, false);
        c.record(7, true);
        assert_eq!(c.runs(3), 3);
        assert_eq!(c.fails(3), 1);
        assert_eq!(c.runs(7), 1);
        assert_eq!(c.fails(7), 0);
        assert_eq!(c.runs(99), 0);
        assert_eq!(c.total_runs(), 4);
        assert_eq!(c.total_fails(), 1);
        assert_eq!(c.fired_sites(), vec![3]);
        assert_eq!(c.site_count(), 2);
    }

    #[test]
    fn counted_check_counts_but_never_aborts() {
        let mut h = Heap::with_defaults();
        let ty = h.register_type(TypeLayout::new(
            "node",
            vec![SlotKind::Ptr(PtrKind::SameRegion), SlotKind::Data],
        ));
        h.enable_check_counting();
        let r1 = h.new_region();
        let r2 = h.new_region();
        let a = h.ralloc(r1, ty).unwrap();
        let b = h.ralloc(r1, ty).unwrap();
        let c = h.ralloc(r2, ty).unwrap();
        h.set_check_site(5);
        // Passing store: counted, no failure.
        h.write_ptr(a, 0, b, WriteMode::CountedCheck(PtrKind::SameRegion)).unwrap();
        // Cross-region store: the qs check would abort here; the counting
        // mode records the failure and completes the store with the full
        // reference-count update instead.
        h.write_ptr(a, 0, c, WriteMode::CountedCheck(PtrKind::SameRegion)).unwrap();
        assert_eq!(h.region_rc(r2), 1, "failed check still counted the store");
        let counter = h.take_check_counter().unwrap();
        assert_eq!(counter.runs(5), 2);
        assert_eq!(counter.fails(5), 1);
        assert_eq!(counter.fired_sites(), vec![5]);
        // Refcounts stayed conservation-correct: the audit passes.
        h.write_ptr(a, 0, Addr::NULL, WriteMode::Counted).unwrap();
        h.delete_region(r2).unwrap();
        h.audit().unwrap();
    }

    #[test]
    fn counting_disabled_records_nothing() {
        let mut h = Heap::with_defaults();
        let ty = h.register_type(TypeLayout::new(
            "node",
            vec![SlotKind::Ptr(PtrKind::SameRegion)],
        ));
        let r = h.new_region();
        let a = h.ralloc(r, ty).unwrap();
        h.write_ptr(a, 0, a, WriteMode::CountedCheck(PtrKind::SameRegion)).unwrap();
        assert!(h.take_check_counter().is_none());
    }
}
