#![warn(missing_docs)]

//! # region-rt — the RC region runtime
//!
//! A faithful Rust reimplementation of the runtime library behind **RC**,
//! the dialect of C with reference-counted regions from David Gay and Alex
//! Aiken, *Language Support for Regions* (PLDI 2001).
//!
//! Region-based memory management groups allocations into *regions*;
//! objects are never freed individually — deleting a region frees everything
//! in it. RC makes deletion *safe* by keeping, per region, a count of the
//! external pointers into it: `deleteregion` fails while that count is
//! non-zero. Three pointer annotations (`sameregion`, `parentptr`,
//! `traditional`) replace the count update on a store with a much cheaper
//! runtime check, and a region type system (see the `rlang` crate)
//! eliminates many of those checks statically.
//!
//! This crate provides:
//!
//! - the paper's Figure 2 region API over a simulated word-addressed heap
//!   ([`Heap`]): `newregion`, `newsubregion`, `deleteregion`, `ralloc`,
//!   `rarrayalloc`, `regionof`;
//! - the Figure 3 write barriers: the reference-count update and the three
//!   annotation checks ([`rcops::WriteMode`]);
//! - the subregion hierarchy with the DFS numbering used by the
//!   `parentptr` check ([`region`]);
//! - the two baselines of the paper's evaluation: a size-class
//!   `malloc/free` allocator ([`malloc`]) and a conservative mark–sweep
//!   collector ([`gc`]), plus the region-emulation library used to run
//!   region-based programs on those baselines ([`emu`]);
//! - an instruction cost model calibrated to the paper's published numbers
//!   ([`cost`]) and dynamic-event statistics ([`stats`]);
//! - a heap auditor that independently verifies the reference-count
//!   invariant ([`audit`]);
//! - a deterministic fault-injection subsystem for torture-testing
//!   graceful degradation: schedule- or SplitMix64-driven failures at the
//!   page, allocation, reference-count, and annotation-check planes, with
//!   byte-reproducible injection logs ([`fault`]); see
//!   `docs/ROBUSTNESS.md`;
//! - a zero-dependency telemetry subsystem: a bounded ring of typed
//!   dynamic events with per-site attribution ([`trace`]), folded
//!   profiles — lifetime histograms, hot-region/hot-site tables, a region
//!   flamegraph, JSONL export ([`profile`], [`json`]) — and a
//!   deterministic virtual-clock timeline sampler for time-resolved
//!   occupancy, fragmentation, and RC/check-rate metrics ([`timeline`]),
//!   and a span tree modeling every region lifecycle as a
//!   `newregion`…`deleteregion` interval with span-scoped alloc/RC/check
//!   annotations for provenance export ([`span`]).
//!   See `docs/OBSERVABILITY.md`;
//! - per-task heap shards with typed region handoff for the parallel
//!   `spawn`/`join` extension, plus exact merge operations on every
//!   telemetry aggregate so parallel runs report byte-deterministically
//!   ([`shard`]).
//!
//! ## Example
//!
//! ```
//! use region_rt::{Heap, TypeLayout, SlotKind, PtrKind, WriteMode};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut heap = Heap::with_defaults();
//! // struct rlist { struct rlist *sameregion next; int data; }
//! let rlist = heap.register_type(TypeLayout::new(
//!     "rlist",
//!     vec![SlotKind::Ptr(PtrKind::SameRegion), SlotKind::Data],
//! ));
//!
//! let r = heap.new_region();
//! let mut last = region_rt::Addr::NULL;
//! for i in 0..100 {
//!     let node = heap.ralloc(r, rlist)?;
//!     heap.write_ptr(node, 0, last, WriteMode::Check(PtrKind::SameRegion))?;
//!     heap.write_int(node, 1, i)?;
//!     last = node;
//! }
//! // The whole list dies with its region — one call, no per-object frees.
//! heap.delete_region(r)?;
//! # Ok(())
//! # }
//! ```

pub mod addr;
pub mod alloc;
pub mod audit;
pub mod checkcount;
pub mod cost;
pub mod critpath;
pub mod emu;
pub mod error;
pub mod fault;
pub mod gc;
pub mod heap;
pub mod json;
pub mod layout;
pub mod malloc;
pub mod page;
pub mod profile;
pub mod rcops;
pub mod region;
pub mod shard;
pub mod snapshot;
pub mod span;
pub mod stats;
pub mod timeline;
pub mod trace;

pub use addr::Addr;
pub use audit::AuditError;
pub use checkcount::{CheckCounter, SiteCheckCounts, NO_CHECK_SITE};
pub use cost::{Clock, CostModel, Cycles};
pub use critpath::{analyze as critpath_analyze, CritPath, PathSeg, TaskBreakdown};
pub use emu::{EmuBackend, EmuRegionId, EmuRegions};
pub use error::RtError;
pub use fault::{FaultArmReport, FaultMode, FaultPlan, FaultPlane, FaultReport, InjectedFault};
pub use heap::{DeletePolicy, Heap, HeapConfig, NumberingScheme};
pub use json::{Json, JsonParseError};
pub use layout::{PtrKind, SlotKind, TypeId, TypeLayout};
pub use profile::{Profile, ProfileTotals, RegionProfile, SiteProfile};
pub use rcops::WriteMode;
pub use region::{RegionId, TRADITIONAL};
pub use shard::{
    audit_all, Facet, Handoff, SchedEvent, SchedEventKind, SchedLog, SchedRecorder, Shard, ShardId,
    SharedClock, TaskReport, SCHED_EVENT_CAP,
};
pub use snapshot::{
    HeapSnapshot, PageSnapshot, RegionSnapshot, SiteRetained, SnapOwner, SnapshotReason,
    SNAPSHOT_SCHEMA,
};
pub use span::{SiteFires, Span, SpanNote, SpanTree, DEFAULT_SPAN_NOTE_CAP};
pub use stats::{AssignCategory, Stats};
pub use timeline::{
    sparkline, HeapGauges, MetricsSnapshot, Timeline, DEFAULT_SAMPLE_INTERVAL,
    DEFAULT_TIMELINE_CAP,
};
pub use trace::{mask, Event, Tracer, DEFAULT_RING_CAPACITY};
