//! Folded telemetry profiles: what the raw event trace means.
//!
//! A [`Profile`] is the online fold of every [`Event`] a
//! [`Tracer`](crate::trace::Tracer) records: exact totals per event kind,
//! per-region allocation and lifetime accounting, per-site (source line)
//! attribution of allocations, checks and count updates, a log₂ histogram
//! of region lifetimes, and a text "region flamegraph" of the subregion
//! hierarchy sized by allocated words.
//!
//! Because the fold happens at emission time, profile totals are exact
//! even when the tracer's bounded ring has overwritten old raw events —
//! the invariant the `rc-bench` integration tests pin against the
//! [`Stats`](crate::stats::Stats) counters.

use std::collections::BTreeMap;

use crate::cost::Cycles;
use crate::json::Json;
use crate::layout::PtrKind;
use crate::trace::{check_kind_name, Event};

/// Exact totals per event kind (matching the `Stats` counters for the
/// same run when all event kinds are enabled).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ProfileTotals {
    /// Regions created (top-level and subregions; matches
    /// `Stats::regions_created`).
    pub regions_created: u64,
    /// The subset of `regions_created` that were subregions of a
    /// non-traditional region.
    pub subregions_created: u64,
    /// Regions reclaimed (matches `Stats::regions_deleted`).
    pub regions_deleted: u64,
    /// Objects allocated, all allocators (matches
    /// `Stats::objects_allocated`).
    pub allocs: u64,
    /// Words allocated (matches `Stats::words_allocated`).
    pub alloc_words: u64,
    /// Full reference-count updates (matches `Stats::rc_updates_full`).
    pub rc_updates_full: u64,
    /// Early-exit count updates (matches `Stats::rc_updates_same`).
    pub rc_updates_same: u64,
    /// `sameregion` checks (matches `Stats::checks_sameregion`).
    pub checks_sameregion: u64,
    /// `parentptr` checks (matches `Stats::checks_parentptr`).
    pub checks_parentptr: u64,
    /// `traditional` checks (matches `Stats::checks_traditional`).
    pub checks_traditional: u64,
    /// Checks that failed (each aborts the program, so at most one per
    /// run in practice).
    pub checks_failed: u64,
    /// Mark–sweep collections (matches `Stats::gc_collections`).
    pub gc_collections: u64,
    /// Auditor runs reported via `Heap::record_audit_run`.
    pub audit_runs: u64,
    /// Auditor runs that found a violated invariant.
    pub audit_failures: u64,
    /// Injected faults (matches `Stats::faults_injected`).
    pub faults_injected: u64,
}

impl ProfileTotals {
    /// All annotation checks executed.
    pub fn checks_total(&self) -> u64 {
        self.checks_sameregion + self.checks_parentptr + self.checks_traditional
    }

    /// All reference-count updates executed.
    pub fn rc_updates_total(&self) -> u64 {
        self.rc_updates_full + self.rc_updates_same
    }

    /// Exact fieldwise roll-up (shard → global; see [`crate::shard`]).
    /// Commutative and associative: every field is a sum. The exhaustive
    /// literal makes adding a totals field without a merge rule a
    /// compile error.
    #[must_use]
    pub fn merge(&self, other: &ProfileTotals) -> ProfileTotals {
        ProfileTotals {
            regions_created: self.regions_created + other.regions_created,
            subregions_created: self.subregions_created + other.subregions_created,
            regions_deleted: self.regions_deleted + other.regions_deleted,
            allocs: self.allocs + other.allocs,
            alloc_words: self.alloc_words + other.alloc_words,
            rc_updates_full: self.rc_updates_full + other.rc_updates_full,
            rc_updates_same: self.rc_updates_same + other.rc_updates_same,
            checks_sameregion: self.checks_sameregion + other.checks_sameregion,
            checks_parentptr: self.checks_parentptr + other.checks_parentptr,
            checks_traditional: self.checks_traditional + other.checks_traditional,
            checks_failed: self.checks_failed + other.checks_failed,
            gc_collections: self.gc_collections + other.gc_collections,
            audit_runs: self.audit_runs + other.audit_runs,
            audit_failures: self.audit_failures + other.audit_failures,
            faults_injected: self.faults_injected + other.faults_injected,
        }
    }
}

/// Per-region accounting.
#[derive(Debug, Default, Clone)]
pub struct RegionProfile {
    /// The region.
    pub region: u32,
    /// Parent region, when the creation event was observed (the
    /// traditional region 0 for top-level regions).
    pub parent: Option<u32>,
    /// Virtual time of creation (0 when creation was not observed).
    pub created_at: Cycles,
    /// Objects allocated into this region.
    pub alloc_objects: u64,
    /// Words allocated into this region.
    pub alloc_words: u64,
    /// Whether the region's deletion was observed.
    pub deleted: bool,
    /// Words of storage freed at deletion.
    pub live_words_at_delete: u64,
    /// Virtual lifetime (creation to reclamation).
    pub lifetime_cycles: Cycles,
}

/// Per-source-line attribution.
#[derive(Debug, Default, Clone)]
pub struct SiteProfile {
    /// 1-based source line (0 = unattributed runtime-internal events).
    pub line: u32,
    /// Allocations at this line.
    pub allocs: u64,
    /// Words allocated at this line.
    pub alloc_words: u64,
    /// `sameregion` checks at this line.
    pub checks_sameregion: u64,
    /// `parentptr` checks at this line.
    pub checks_parentptr: u64,
    /// `traditional` checks at this line.
    pub checks_traditional: u64,
    /// Checks at this line that failed.
    pub checks_failed: u64,
    /// Reference-count updates at this line.
    pub rc_updates: u64,
}

impl SiteProfile {
    /// All checks executed at this line.
    pub fn checks_total(&self) -> u64 {
        self.checks_sameregion + self.checks_parentptr + self.checks_traditional
    }
}

/// Number of log₂ lifetime buckets: bucket 0 holds lifetime 0, bucket
/// `i ≥ 1` holds lifetimes in `[2^(i-1), 2^i)`.
pub const LIFETIME_BUCKETS: usize = 65;

/// The folded profile of one traced run.
#[derive(Debug, Clone)]
pub struct Profile {
    /// Exact per-kind totals.
    pub totals: ProfileTotals,
    regions: BTreeMap<u32, RegionProfile>,
    sites: BTreeMap<u32, SiteProfile>,
    lifetime_hist: [u64; LIFETIME_BUCKETS],
}

impl Default for Profile {
    fn default() -> Self {
        Profile::new()
    }
}

impl Profile {
    /// An empty profile.
    pub fn new() -> Profile {
        Profile {
            totals: ProfileTotals::default(),
            regions: BTreeMap::new(),
            sites: BTreeMap::new(),
            lifetime_hist: [0; LIFETIME_BUCKETS],
        }
    }

    fn region_mut(&mut self, region: u32) -> &mut RegionProfile {
        self.regions.entry(region).or_insert_with(|| RegionProfile {
            region,
            ..RegionProfile::default()
        })
    }

    fn site_mut(&mut self, line: u32) -> &mut SiteProfile {
        self.sites.entry(line).or_insert_with(|| SiteProfile { line, ..SiteProfile::default() })
    }

    /// The largest region index this profile mentions (0 when none):
    /// the offset base a merging parent passes to
    /// [`Profile::offset_regions`] so shard indices never collide.
    pub fn max_region(&self) -> u32 {
        self.regions.keys().max().copied().unwrap_or(0)
    }

    /// Renumbers every region this profile mentions into a shard-global
    /// namespace: raw region `r > 0` becomes `r + offset`, while region 0
    /// (the traditional region, which every shard shares a facet of)
    /// stays 0. Called before [`Profile::merge`] so per-shard region
    /// indices cannot collide.
    pub fn offset_regions(&mut self, offset: u32) {
        let remap = |r: u32| if r == 0 { 0 } else { r + offset };
        let old = std::mem::take(&mut self.regions);
        for (r, mut p) in old {
            let nr = remap(r);
            p.region = nr;
            p.parent = p.parent.map(remap);
            self.regions.insert(nr, p);
        }
    }

    /// Exact merge of two folded profiles (shard → global roll-up; see
    /// [`crate::shard`]). Totals, per-site rows and the lifetime
    /// histogram sum fieldwise; per-region rows union by region index,
    /// summing counters when both sides observed the same region (only
    /// region 0 after [`Profile::offset_regions`]). Commutative and
    /// associative over well-formed inputs, i.e. inputs that agree on
    /// any shared region's parent and creation time.
    #[must_use]
    pub fn merge(&self, other: &Profile) -> Profile {
        let mut out = self.clone();
        out.totals = self.totals.merge(&other.totals);
        for (r, p) in &other.regions {
            match out.regions.entry(*r) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(p.clone());
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    let q = e.get_mut();
                    q.parent = q.parent.or(p.parent);
                    q.created_at += p.created_at;
                    q.alloc_objects += p.alloc_objects;
                    q.alloc_words += p.alloc_words;
                    q.deleted |= p.deleted;
                    q.live_words_at_delete += p.live_words_at_delete;
                    q.lifetime_cycles += p.lifetime_cycles;
                }
            }
        }
        for (line, s) in &other.sites {
            match out.sites.entry(*line) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(s.clone());
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    let t = e.get_mut();
                    t.allocs += s.allocs;
                    t.alloc_words += s.alloc_words;
                    t.checks_sameregion += s.checks_sameregion;
                    t.checks_parentptr += s.checks_parentptr;
                    t.checks_traditional += s.checks_traditional;
                    t.checks_failed += s.checks_failed;
                    t.rc_updates += s.rc_updates;
                }
            }
        }
        for (i, n) in other.lifetime_hist.iter().enumerate() {
            out.lifetime_hist[i] += n;
        }
        out
    }

    /// Folds one event into the profile.
    pub fn fold(&mut self, ev: &Event) {
        match *ev {
            Event::RegionCreated { region, at } => {
                self.totals.regions_created += 1;
                let r = self.region_mut(region);
                r.parent = Some(0);
                r.created_at = at;
            }
            Event::SubregionCreated { region, parent, at } => {
                self.totals.regions_created += 1;
                self.totals.subregions_created += 1;
                let r = self.region_mut(region);
                r.parent = Some(parent);
                r.created_at = at;
            }
            Event::RegionDeleted { region, live_words, lifetime_cycles } => {
                self.totals.regions_deleted += 1;
                let r = self.region_mut(region);
                r.deleted = true;
                r.live_words_at_delete = live_words;
                r.lifetime_cycles = lifetime_cycles;
                self.lifetime_hist[log2_bucket(lifetime_cycles)] += 1;
            }
            Event::Alloc { region, site, words } => {
                self.totals.allocs += 1;
                self.totals.alloc_words += words as u64;
                let r = self.region_mut(region);
                r.alloc_objects += 1;
                r.alloc_words += words as u64;
                let s = self.site_mut(site);
                s.allocs += 1;
                s.alloc_words += words as u64;
            }
            Event::RcUpdate { full, site, .. } => {
                if full {
                    self.totals.rc_updates_full += 1;
                } else {
                    self.totals.rc_updates_same += 1;
                }
                self.site_mut(site).rc_updates += 1;
            }
            Event::CheckRun { kind, site, passed } => {
                let s = self.site_mut(site);
                match kind {
                    PtrKind::SameRegion => s.checks_sameregion += 1,
                    PtrKind::ParentPtr => s.checks_parentptr += 1,
                    PtrKind::Traditional => s.checks_traditional += 1,
                    PtrKind::Counted => {}
                }
                if !passed {
                    s.checks_failed += 1;
                    self.totals.checks_failed += 1;
                }
                match kind {
                    PtrKind::SameRegion => self.totals.checks_sameregion += 1,
                    PtrKind::ParentPtr => self.totals.checks_parentptr += 1,
                    PtrKind::Traditional => self.totals.checks_traditional += 1,
                    PtrKind::Counted => {}
                }
            }
            Event::GcCollection { .. } => self.totals.gc_collections += 1,
            Event::AuditRun { ok } => {
                self.totals.audit_runs += 1;
                if !ok {
                    self.totals.audit_failures += 1;
                }
            }
            Event::Fault { .. } => self.totals.faults_injected += 1,
        }
    }

    /// Per-region profiles, region id ascending.
    pub fn regions(&self) -> impl Iterator<Item = &RegionProfile> {
        self.regions.values()
    }

    /// Per-site profiles, line ascending.
    pub fn sites(&self) -> impl Iterator<Item = &SiteProfile> {
        self.sites.values()
    }

    /// The log₂ lifetime histogram (see [`LIFETIME_BUCKETS`]).
    pub fn lifetime_histogram(&self) -> &[u64; LIFETIME_BUCKETS] {
        &self.lifetime_hist
    }

    /// Top `n` regions by allocated words (ties: lower region id first).
    pub fn hot_regions(&self, n: usize) -> Vec<&RegionProfile> {
        let mut v: Vec<&RegionProfile> =
            self.regions.values().filter(|r| r.alloc_words > 0).collect();
        v.sort_by(|a, b| b.alloc_words.cmp(&a.alloc_words).then(a.region.cmp(&b.region)));
        v.truncate(n);
        v
    }

    /// Top `n` check sites by executed checks (ties: lower line first).
    pub fn hot_check_sites(&self, n: usize) -> Vec<&SiteProfile> {
        let mut v: Vec<&SiteProfile> =
            self.sites.values().filter(|s| s.checks_total() > 0).collect();
        v.sort_by(|a, b| b.checks_total().cmp(&a.checks_total()).then(a.line.cmp(&b.line)));
        v.truncate(n);
        v
    }

    /// Top `n` allocation sites by allocated words (ties: lower line
    /// first).
    pub fn hot_alloc_sites(&self, n: usize) -> Vec<&SiteProfile> {
        let mut v: Vec<&SiteProfile> = self.sites.values().filter(|s| s.allocs > 0).collect();
        v.sort_by(|a, b| b.alloc_words.cmp(&a.alloc_words).then(a.line.cmp(&b.line)));
        v.truncate(n);
        v
    }

    /// The region flamegraph: the subregion hierarchy as an indented
    /// tree, each region sized by the words allocated in its subtree.
    pub fn flamegraph(&self) -> String {
        // children[parent] = ordered child list; regions with an
        // unobserved parent hang off the traditional root 0.
        let mut children: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
        for r in self.regions.values() {
            if r.region == 0 {
                continue;
            }
            let p = match r.parent {
                Some(p) if p == r.region => 0,
                Some(p) => p,
                None => 0,
            };
            children.entry(p).or_default().push(r.region);
        }
        // Subtree words via post-order accumulation.
        let mut subtree: BTreeMap<u32, u64> = BTreeMap::new();
        fn accumulate(
            node: u32,
            children: &BTreeMap<u32, Vec<u32>>,
            regions: &BTreeMap<u32, RegionProfile>,
            subtree: &mut BTreeMap<u32, u64>,
        ) -> u64 {
            let own = regions.get(&node).map_or(0, |r| r.alloc_words);
            let kids: u64 = children
                .get(&node)
                .map(|ks| ks.iter().map(|&k| accumulate(k, children, regions, subtree)).sum())
                .unwrap_or(0);
            subtree.insert(node, own + kids);
            own + kids
        }
        let total = accumulate(0, &children, &self.regions, &mut subtree).max(1);

        let mut out = String::new();
        out.push_str("region flamegraph (bar ∝ words allocated in subtree)\n");
        fn render(
            node: u32,
            depth: usize,
            children: &BTreeMap<u32, Vec<u32>>,
            regions: &BTreeMap<u32, RegionProfile>,
            subtree: &BTreeMap<u32, u64>,
            total: u64,
            out: &mut String,
        ) {
            let words = subtree.get(&node).copied().unwrap_or(0);
            let bar_len = ((words as f64 / total as f64) * 40.0).round() as usize;
            let label = if node == 0 {
                "r0 (traditional)".to_string()
            } else {
                let dead =
                    if regions.get(&node).is_some_and(|r| r.deleted) { " †" } else { "" };
                format!("r{node}{dead}")
            };
            out.push_str(&format!(
                "{:indent$}{label:<width$} {words:>10} words  {bar}\n",
                "",
                indent = depth * 2,
                width = 24usize.saturating_sub(depth * 2),
                bar = "#".repeat(bar_len.max(usize::from(words > 0)))
            ));
            if let Some(kids) = children.get(&node) {
                for &k in kids {
                    render(k, depth + 1, children, regions, subtree, total, out);
                }
            }
        }
        render(0, 0, &children, &self.regions, &subtree, total, &mut out);
        out
    }

    /// A human-readable report: totals, hot tables, lifetime histogram
    /// and the flamegraph. `source` labels check/alloc sites
    /// (`source:line`).
    pub fn text_report(&self, source: &str) -> String {
        let t = &self.totals;
        let mut out = String::new();
        out.push_str(&format!("telemetry profile — {source}\n"));
        out.push_str(&format!(
            "  regions   {} created ({} subregions), {} deleted\n",
            t.regions_created, t.subregions_created, t.regions_deleted
        ));
        out.push_str(&format!("  allocs    {} objects, {} words\n", t.allocs, t.alloc_words));
        out.push_str(&format!(
            "  rc        {} full + {} early-exit updates\n",
            t.rc_updates_full, t.rc_updates_same
        ));
        out.push_str(&format!(
            "  checks    {} sameregion, {} parentptr, {} traditional ({} failed)\n",
            t.checks_sameregion, t.checks_parentptr, t.checks_traditional, t.checks_failed
        ));
        if t.gc_collections > 0 {
            out.push_str(&format!("  gc        {} collections\n", t.gc_collections));
        }
        if t.audit_runs > 0 {
            out.push_str(&format!(
                "  audits    {} runs, {} failures\n",
                t.audit_runs, t.audit_failures
            ));
        }
        if t.faults_injected > 0 {
            out.push_str(&format!("  faults    {} injected\n", t.faults_injected));
        }
        let checks = self.hot_check_sites(5);
        if !checks.is_empty() {
            out.push_str("  top check sites:\n");
            for s in checks {
                out.push_str(&format!(
                    "    {source}:{:<5} {:>10} checks ({} sr / {} pp / {} trad)\n",
                    s.line,
                    s.checks_total(),
                    s.checks_sameregion,
                    s.checks_parentptr,
                    s.checks_traditional
                ));
            }
        }
        let allocs = self.hot_alloc_sites(5);
        if !allocs.is_empty() {
            out.push_str("  top alloc sites:\n");
            for s in allocs {
                out.push_str(&format!(
                    "    {source}:{:<5} {:>10} words in {} objects\n",
                    s.line, s.alloc_words, s.allocs
                ));
            }
        }
        let hist = self.lifetime_text();
        if !hist.is_empty() {
            out.push_str("  region lifetimes (virtual cycles):\n");
            out.push_str(&hist);
        }
        out.push_str(&self.flamegraph());
        out
    }

    /// The nonempty rows of the lifetime histogram as indented text.
    fn lifetime_text(&self) -> String {
        let max = self.lifetime_hist.iter().copied().max().unwrap_or(0);
        if max == 0 {
            return String::new();
        }
        let mut out = String::new();
        for (i, &n) in self.lifetime_hist.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let range = if i == 0 {
                "0".to_string()
            } else {
                format!("[2^{}, 2^{})", i - 1, i)
            };
            let bar = "#".repeat(((n as f64 / max as f64) * 30.0).ceil() as usize);
            out.push_str(&format!("    {range:<14} {n:>8}  {bar}\n"));
        }
        out
    }

    /// Encodes the folded profile as one JSON object (one JSONL line via
    /// [`Json::render`]).
    pub fn to_json(&self, source: &str) -> Json {
        let t = &self.totals;
        let totals = Json::obj(vec![
            ("regions_created", Json::U(t.regions_created)),
            ("subregions_created", Json::U(t.subregions_created)),
            ("regions_deleted", Json::U(t.regions_deleted)),
            ("allocs", Json::U(t.allocs)),
            ("alloc_words", Json::U(t.alloc_words)),
            ("rc_updates_full", Json::U(t.rc_updates_full)),
            ("rc_updates_same", Json::U(t.rc_updates_same)),
            ("checks_sameregion", Json::U(t.checks_sameregion)),
            ("checks_parentptr", Json::U(t.checks_parentptr)),
            ("checks_traditional", Json::U(t.checks_traditional)),
            ("checks_failed", Json::U(t.checks_failed)),
            ("gc_collections", Json::U(t.gc_collections)),
            ("audit_runs", Json::U(t.audit_runs)),
            ("audit_failures", Json::U(t.audit_failures)),
            ("faults_injected", Json::U(t.faults_injected)),
        ]);
        let sites = Json::A(
            self.sites
                .values()
                .map(|s| {
                    Json::obj(vec![
                        ("line", Json::U(s.line as u64)),
                        ("allocs", Json::U(s.allocs)),
                        ("alloc_words", Json::U(s.alloc_words)),
                        ("checks_sameregion", Json::U(s.checks_sameregion)),
                        ("checks_parentptr", Json::U(s.checks_parentptr)),
                        ("checks_traditional", Json::U(s.checks_traditional)),
                        ("checks_failed", Json::U(s.checks_failed)),
                        ("rc_updates", Json::U(s.rc_updates)),
                    ])
                })
                .collect(),
        );
        let regions = Json::A(
            self.regions
                .values()
                .map(|r| {
                    Json::obj(vec![
                        ("region", Json::U(r.region as u64)),
                        (
                            "parent",
                            r.parent.map_or(Json::Null, |p| Json::U(p as u64)),
                        ),
                        ("created_at", Json::U(r.created_at)),
                        ("alloc_objects", Json::U(r.alloc_objects)),
                        ("alloc_words", Json::U(r.alloc_words)),
                        ("deleted", Json::Bool(r.deleted)),
                        ("live_words_at_delete", Json::U(r.live_words_at_delete)),
                        ("lifetime_cycles", Json::U(r.lifetime_cycles)),
                    ])
                })
                .collect(),
        );
        Json::obj(vec![
            ("kind", Json::s("profile")),
            ("source", Json::s(source)),
            ("totals", totals),
            ("sites", sites),
            ("regions", regions),
            (
                "lifetime_hist",
                Json::A(self.lifetime_hist.iter().map(|&n| Json::U(n)).collect()),
            ),
        ])
    }
}

/// `check_kind_name` re-exported for report builders that format check
/// kinds alongside profile tables.
pub fn kind_name(kind: PtrKind) -> &'static str {
    check_kind_name(kind)
}

fn log2_bucket(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::NO_REGION;

    fn alloc(region: u32, site: u32, words: u32) -> Event {
        Event::Alloc { region, site, words }
    }

    #[test]
    fn fold_accumulates_totals_sites_and_regions() {
        let mut p = Profile::new();
        p.fold(&Event::RegionCreated { region: 1, at: 10 });
        p.fold(&Event::SubregionCreated { region: 2, parent: 1, at: 20 });
        p.fold(&alloc(1, 5, 3));
        p.fold(&alloc(2, 5, 2));
        p.fold(&alloc(2, 9, 4));
        p.fold(&Event::CheckRun { kind: PtrKind::SameRegion, site: 7, passed: true });
        p.fold(&Event::RcUpdate { from: 1, to: NO_REGION, full: true, site: 7 });
        p.fold(&Event::RegionDeleted { region: 2, live_words: 6, lifetime_cycles: 100 });

        assert_eq!(p.totals.regions_created, 2);
        assert_eq!(p.totals.subregions_created, 1);
        assert_eq!(p.totals.allocs, 3);
        assert_eq!(p.totals.alloc_words, 9);
        assert_eq!(p.totals.checks_total(), 1);
        assert_eq!(p.totals.rc_updates_total(), 1);

        let site5 = p.sites().find(|s| s.line == 5).unwrap();
        assert_eq!(site5.allocs, 2);
        assert_eq!(site5.alloc_words, 5);
        let site7 = p.sites().find(|s| s.line == 7).unwrap();
        assert_eq!(site7.checks_total(), 1);
        assert_eq!(site7.rc_updates, 1);

        let r2 = p.regions().find(|r| r.region == 2).unwrap();
        assert_eq!(r2.parent, Some(1));
        assert!(r2.deleted);
        assert_eq!(r2.live_words_at_delete, 6);
        assert_eq!(r2.lifetime_cycles, 100);
        // lifetime 100 ∈ [2^6, 2^7) → bucket 7.
        assert_eq!(p.lifetime_histogram()[7], 1);
    }

    #[test]
    fn hot_tables_rank_and_truncate() {
        let mut p = Profile::new();
        for (site, n) in [(3u32, 5u64), (8, 9), (2, 9), (4, 1)] {
            for _ in 0..n {
                p.fold(&Event::CheckRun { kind: PtrKind::ParentPtr, site, passed: true });
            }
        }
        let hot = p.hot_check_sites(3);
        let lines: Vec<u32> = hot.iter().map(|s| s.line).collect();
        assert_eq!(lines, vec![2, 8, 3], "count desc, line asc on ties, top 3");
    }

    #[test]
    fn flamegraph_indents_subregions_under_parents() {
        let mut p = Profile::new();
        p.fold(&Event::RegionCreated { region: 1, at: 0 });
        p.fold(&Event::SubregionCreated { region: 2, parent: 1, at: 0 });
        p.fold(&Event::SubregionCreated { region: 3, parent: 2, at: 0 });
        p.fold(&alloc(1, 0, 10));
        p.fold(&alloc(2, 0, 20));
        p.fold(&alloc(3, 0, 30));
        let fg = p.flamegraph();
        let lines: Vec<&str> = fg.lines().collect();
        // Header, r0, then r1 > r2 > r3 each two spaces deeper.
        assert!(lines[1].starts_with("r0 (traditional)"));
        assert!(lines[2].starts_with("  r1"));
        assert!(lines[3].starts_with("    r2"));
        assert!(lines[4].starts_with("      r3"));
        // Subtree sizing: r1's subtree holds all 60 words.
        assert!(lines[2].contains("60 words"));
        assert!(lines[3].contains("50 words"));
        assert!(lines[4].contains("30 words"));
    }

    #[test]
    fn log2_buckets() {
        assert_eq!(log2_bucket(0), 0);
        assert_eq!(log2_bucket(1), 1);
        assert_eq!(log2_bucket(2), 2);
        assert_eq!(log2_bucket(3), 2);
        assert_eq!(log2_bucket(4), 3);
        assert_eq!(log2_bucket(u64::MAX), 64);
    }

    #[test]
    fn offset_regions_shifts_everything_but_the_traditional_region() {
        let mut p = Profile::new();
        p.fold(&Event::RegionCreated { region: 1, at: 10 });
        p.fold(&Event::SubregionCreated { region: 2, parent: 1, at: 20 });
        p.fold(&alloc(0, 3, 4));
        p.offset_regions(10);
        let ids: Vec<u32> = p.regions().map(|r| r.region).collect();
        assert_eq!(ids, vec![0, 11, 12]);
        assert_eq!(p.regions().find(|r| r.region == 12).unwrap().parent, Some(11));
        assert_eq!(p.regions().find(|r| r.region == 0).unwrap().alloc_words, 4);
    }

    #[test]
    fn merge_unions_sites_and_regions_and_sums_totals() {
        let mut a = Profile::new();
        a.fold(&Event::RegionCreated { region: 1, at: 10 });
        a.fold(&alloc(1, 5, 3));
        a.fold(&Event::CheckRun { kind: PtrKind::SameRegion, site: 7, passed: false });
        let mut b = Profile::new();
        b.fold(&Event::RegionCreated { region: 1, at: 20 });
        b.fold(&alloc(1, 5, 2));
        b.fold(&alloc(1, 9, 4));
        b.fold(&Event::RegionDeleted { region: 1, live_words: 6, lifetime_cycles: 100 });
        // A shard merge always offsets the incoming profile first so only
        // the shared traditional region collides.
        b.offset_regions(1);
        let m = a.merge(&b);
        assert_eq!(m.totals.regions_created, 2);
        assert_eq!(m.totals.allocs, 3);
        assert_eq!(m.totals.alloc_words, 9);
        assert_eq!(m.totals.checks_failed, 1);
        let ids: Vec<u32> = m.regions().map(|r| r.region).collect();
        assert_eq!(ids, vec![1, 2]);
        assert!(m.regions().find(|r| r.region == 2).unwrap().deleted);
        let site5 = m.sites().find(|s| s.line == 5).unwrap();
        assert_eq!((site5.allocs, site5.alloc_words), (2, 5));
        // lifetime 100 → bucket 7, carried through the histogram sum.
        assert_eq!(m.lifetime_histogram()[7], 1);
    }

    #[test]
    fn merge_is_associative() {
        let mk = |region: u32, site: u32, at: u64| {
            let mut p = Profile::new();
            p.fold(&Event::RegionCreated { region, at });
            p.fold(&alloc(region, site, site + 1));
            p.fold(&Event::CheckRun { kind: PtrKind::ParentPtr, site, passed: true });
            p
        };
        let (a, b, c) = (mk(1, 3, 5), mk(2, 4, 6), mk(1, 3, 7));
        let left = a.merge(&b).merge(&c);
        let right = a.merge(&b.merge(&c));
        assert_eq!(left.to_json("x").render(), right.to_json("x").render());
    }

    #[test]
    fn profile_json_has_schema_fields() {
        let mut p = Profile::new();
        p.fold(&alloc(1, 4, 2));
        let j = p.to_json("quickstart.rc").render();
        assert!(j.contains(r#""kind":"profile""#));
        assert!(j.contains(r#""source":"quickstart.rc""#));
        assert!(j.contains(r#""allocs":1"#));
        assert!(j.contains(r#""line":4"#));
    }
}
