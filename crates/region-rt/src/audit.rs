//! The heap auditor: independently verifies the reference-count invariant.
//!
//! RC's safety argument rests on one invariant: for every live region `r`,
//! `r.rc` equals the number of *external* unannotated pointers to objects in
//! `r` (pointers not stored within `r`), plus any temporary pins taken for
//! live locals. The auditor recomputes the external-pointer count from
//! scratch by walking every live object in every allocator and compares it
//! against the maintained counts. Integration and property tests run it
//! after executing whole programs.

use std::collections::HashMap;

use crate::addr::Addr;
use crate::heap::Heap;
use crate::region::{RegionId, TRADITIONAL};

/// A discrepancy found by the auditor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuditError {
    /// A region's maintained count disagrees with the recomputed one.
    BadCount {
        /// The region.
        region: RegionId,
        /// `rc - pins` as maintained by the runtime.
        maintained: i64,
        /// The recomputed number of external counted pointers.
        actual: i64,
    },
    /// A counted pointer targets freed memory (a dangling pointer — with
    /// reference counting enabled this must be impossible).
    Dangling {
        /// The object containing the pointer.
        obj: Addr,
        /// Field offset.
        field: usize,
        /// The dangling target.
        val: Addr,
    },
    /// The live-word gauge underflowed at some point during the run (see
    /// [`Stats::sub_live`](crate::stats::Stats::sub_live)): memory was
    /// "freed" that the gauge never saw allocated, so every live/peak
    /// figure after the first underflow is suspect.
    LiveGaugeUnderflow {
        /// How many times the gauge underflowed.
        events: u64,
    },
}

impl std::fmt::Display for AuditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuditError::BadCount { region, maintained, actual } => write!(
                f,
                "region {region:?}: maintained external count {maintained} != recomputed {actual}"
            ),
            AuditError::Dangling { obj, field, val } => {
                write!(f, "dangling counted pointer {val} in field {field} of {obj}")
            }
            AuditError::LiveGaugeUnderflow { events } => {
                write!(f, "live-word gauge underflowed {events} time(s): double free or allocator accounting bug")
            }
        }
    }
}

impl std::error::Error for AuditError {}

impl Heap {
    /// Recomputes every live region's external reference count and checks
    /// it against the maintained count. With reference counting disabled
    /// the invariant is not maintained, so the audit trivially passes.
    ///
    /// # Errors
    ///
    /// Returns the first [`AuditError`] found.
    pub fn audit(&self) -> Result<(), AuditError> {
        // The live-word gauge applies to every configuration (it feeds the
        // peak-memory columns), so check it before the RC early-out.
        if self.stats.live_underflows > 0 {
            return Err(AuditError::LiveGaugeUnderflow { events: self.stats.live_underflows });
        }
        if !self.rc_enabled() {
            return Ok(());
        }
        let mut expected: HashMap<RegionId, i64> = HashMap::new();

        // Region-allocated objects: only the `normal` allocators can hold
        // counted pointers (that is the allocator-segregation invariant).
        for (idx, region) in self.regions.iter().enumerate() {
            if !region.alive {
                continue;
            }
            let container = RegionId(idx as u32);
            for rec in region.normal.objs() {
                self.scan_object(rec.addr, rec.ty, rec.count, container, &mut expected)?;
            }
        }
        // Malloc-heap objects live in the traditional region and may hold
        // counted pointers into regions (globals do exactly this).
        let malloc_objs: Vec<(Addr, crate::layout::TypeId, u32)> = self
            .malloc
            .live_objects()
            .map(|(a, o)| (a, o.ty, o.count))
            .collect();
        for (addr, ty, count) in malloc_objs {
            self.scan_object(addr, ty, count, TRADITIONAL, &mut expected)?;
        }

        for (idx, region) in self.regions.iter().enumerate() {
            if !region.alive {
                continue;
            }
            let r = RegionId(idx as u32);
            let maintained = region.rc - region.pins;
            let actual = expected.get(&r).copied().unwrap_or(0);
            if maintained != actual {
                return Err(AuditError::BadCount { region: r, maintained, actual });
            }
        }
        Ok(())
    }

    fn scan_object(
        &self,
        addr: Addr,
        ty: crate::layout::TypeId,
        count: u32,
        container: RegionId,
        expected: &mut HashMap<RegionId, i64>,
    ) -> Result<(), AuditError> {
        let layout = self.types.get(ty);
        let size = layout.size_words();
        for elem in 0..count as usize {
            let base = addr.offset(elem * size);
            for off in layout.counted_ptr_offsets() {
                let val = Addr::from_raw(self.store.read(base.offset(off)));
                if val.is_null() {
                    continue;
                }
                match self.try_region_of(val) {
                    None => {
                        return Err(AuditError::Dangling { obj: base, field: off, val });
                    }
                    Some(tgt) => {
                        if tgt != container {
                            *expected.entry(tgt).or_insert(0) += 1;
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{PtrKind, SlotKind, TypeLayout};
    use crate::rcops::WriteMode;

    #[test]
    fn audit_passes_on_consistent_heap() {
        let mut h = Heap::with_defaults();
        let ty = h.register_type(TypeLayout::new(
            "n",
            vec![SlotKind::Ptr(PtrKind::Counted), SlotKind::Data],
        ));
        let r1 = h.new_region();
        let r2 = h.new_region();
        let a = h.ralloc(r1, ty).unwrap();
        let b = h.ralloc(r2, ty).unwrap();
        h.write_ptr(a, 0, b, WriteMode::Counted).unwrap();
        h.write_ptr(b, 0, a, WriteMode::Counted).unwrap();
        h.audit().unwrap();
    }

    #[test]
    fn audit_catches_unbarriered_store() {
        let mut h = Heap::with_defaults();
        let ty = h.register_type(TypeLayout::new(
            "n",
            vec![SlotKind::Ptr(PtrKind::Counted), SlotKind::Data],
        ));
        let r1 = h.new_region();
        let r2 = h.new_region();
        let a = h.ralloc(r1, ty).unwrap();
        let b = h.ralloc(r2, ty).unwrap();
        // Raw store skips the barrier: the maintained count is now wrong.
        h.write_ptr(a, 0, b, WriteMode::Raw).unwrap();
        assert!(matches!(h.audit(), Err(AuditError::BadCount { .. })));
    }

    #[test]
    fn audit_accounts_for_pins() {
        let mut h = Heap::with_defaults();
        let r = h.new_region();
        h.pin_region(r);
        h.audit().unwrap(); // pins are excluded from the heap-ref comparison
        h.unpin_region(r);
        h.audit().unwrap();
    }

    #[test]
    fn audit_skips_when_rc_disabled() {
        let mut h = Heap::new(crate::heap::HeapConfig { rc_enabled: false, ..Default::default() });
        let ty = h.register_type(TypeLayout::new(
            "n",
            vec![SlotKind::Ptr(PtrKind::Counted), SlotKind::Data],
        ));
        let r1 = h.new_region();
        let r2 = h.new_region();
        let a = h.ralloc(r1, ty).unwrap();
        let b = h.ralloc(r2, ty).unwrap();
        h.write_ptr(a, 0, b, WriteMode::Raw).unwrap();
        h.audit().unwrap();
    }

    #[test]
    fn audit_reports_live_gauge_underflow() {
        let mut h = Heap::with_defaults();
        // Set the counter directly: reaching it organically needs a release
        // build (sub_live panics under debug_assertions).
        h.stats.live_underflows = 2;
        assert_eq!(h.audit(), Err(AuditError::LiveGaugeUnderflow { events: 2 }));
        // Reported even in configurations where the RC audit is skipped.
        let mut h = Heap::new(crate::heap::HeapConfig { rc_enabled: false, ..Default::default() });
        h.stats.live_underflows = 1;
        assert!(matches!(h.audit(), Err(AuditError::LiveGaugeUnderflow { events: 1 })));
    }

    #[test]
    fn audit_counts_malloc_to_region_refs() {
        let mut h = Heap::with_defaults();
        let ty = h.register_type(TypeLayout::new(
            "n",
            vec![SlotKind::Ptr(PtrKind::Counted), SlotKind::Data],
        ));
        let r = h.new_region();
        let g = h.m_alloc(ty, 1).unwrap(); // a "global" in the malloc heap
        let obj = h.ralloc(r, ty).unwrap();
        h.write_ptr(g, 0, obj, WriteMode::Counted).unwrap();
        assert_eq!(h.region_rc(r), 1);
        h.audit().unwrap();
    }
}
