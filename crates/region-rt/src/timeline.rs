//! Time-series heap sampling: the timeline behind `BENCH_rc.json`.
//!
//! The [`Stats`](crate::stats::Stats) counters and the telemetry
//! [`Profile`](crate::profile::Profile) summarize a whole run; this module
//! records how the heap *evolved* — occupancy, fragmentation, page reuse
//! and RC/check rates over virtual time. A [`Timeline`] attached to a
//! [`Heap`](crate::heap::Heap) takes a [`MetricsSnapshot`] every
//! `interval` runtime events ("ticks": allocations, count updates,
//! checks, frees, collections, interpreter steps). Sampling is driven by
//! the virtual clock's event stream, never by wall time, so two runs of
//! the same program produce byte-identical timelines.
//!
//! Cost discipline matches the tracer (see `docs/OBSERVABILITY.md`):
//! emission sites call [`Heap::sample_tick`](crate::heap::Heap), which is
//! a single compare-with-zero branch while sampling is disabled, and the
//! whole path compiles out under `--no-default-features` (the `telemetry`
//! cargo feature). Sampling is observation-only: it never changes
//! `Stats`, virtual cycles, or program outcome.
//!
//! Memory is bounded by decimation: when the sample buffer reaches its
//! cap, every other sample is dropped and the interval doubles — the
//! classic fixed-size profiler trick, and still deterministic.

use crate::cost::Cycles;
use crate::json::Json;
use crate::stats::Stats;

/// Number of per-page occupancy buckets in a snapshot (eighths of a page).
pub const OCCUPANCY_BUCKETS: usize = 8;

/// Default sampling interval in ticks for interpreter-driven runs.
pub const DEFAULT_SAMPLE_INTERVAL: u64 = 256;

/// Default cap on retained samples before decimation.
pub const DEFAULT_TIMELINE_CAP: usize = 512;

/// Point-in-time structural gauges of the heap, computed by
/// [`Heap::gauges`](crate::heap::Heap::gauges) from the page map and the
/// allocators (not from `Stats`, so tests can cross-check the two).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HeapGauges {
    /// Live regions (including the traditional region).
    pub live_regions: u32,
    /// Pages ever committed by the store (excluding the reserved page 0).
    pub pages_committed: u32,
    /// Committed pages currently owned by an allocator (page map says
    /// owner ≠ free).
    pub pages_in_use: u32,
    /// Committed pages sitting in the store's free pool.
    pub pages_free: u32,
    /// Pages owned by live regions' bump allocators, counted from the
    /// allocators' own page lists (the page map is the other source of
    /// truth; the auditor property tests compare them).
    pub region_pages: u32,
    /// Histogram of live region pages by fill fraction: bucket `i` holds
    /// pages with used words in `(i/8, (i+1)/8]` of a page — the
    /// internal-fragmentation picture.
    pub occupancy: [u32; OCCUPANCY_BUCKETS],
    /// Total free slots across the malloc baseline's size-class free
    /// lists.
    pub malloc_free_depth: u32,
}

/// One timeline sample: structural gauges plus event/cycle deltas since
/// the previous sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Sample sequence number (0-based, before any decimation).
    pub seq: u64,
    /// Virtual clock when the sample was taken.
    pub at_cycles: Cycles,
    /// Runtime events ("ticks") observed when the sample was taken.
    pub ticks: u64,
    /// Source line the interpreter was executing (0 = unattributed), so
    /// samples align with `file:line` phases of the program.
    pub site: u32,
    /// Live words across all allocators (the `Stats` gauge).
    pub live_words: u64,
    /// Peak of the live-word gauge so far.
    pub peak_live_words: u64,
    /// Structural gauges from the page map and allocators.
    pub gauges: HeapGauges,
    /// Virtual cycles elapsed since the previous sample.
    pub d_cycles: Cycles,
    /// Objects allocated since the previous sample.
    pub d_allocs: u64,
    /// Words allocated since the previous sample.
    pub d_alloc_words: u64,
    /// Reference-count updates (full + early-exit) since the previous
    /// sample.
    pub d_rc_updates: u64,
    /// Annotation checks since the previous sample.
    pub d_checks: u64,
    /// Cycles spent on reference counting since the previous sample.
    pub d_rc_cycles: Cycles,
    /// Cycles spent on annotation checks since the previous sample.
    pub d_check_cycles: Cycles,
    /// Cycles spent in the allocators since the previous sample.
    pub d_alloc_cycles: Cycles,
    /// GC collections since the previous sample.
    pub d_gc_collections: u64,
    /// Cycles spent in GC since the previous sample — the pause
    /// attribution for this window.
    pub d_gc_cycles: Cycles,
}

impl MetricsSnapshot {
    /// Encodes the sample as one JSON object (stable key set; see the
    /// schema section of `docs/OBSERVABILITY.md`).
    pub fn to_json(&self) -> Json {
        let g = &self.gauges;
        Json::obj(vec![
            ("seq", Json::U(self.seq)),
            ("at_cycles", Json::U(self.at_cycles)),
            ("ticks", Json::U(self.ticks)),
            ("site", Json::U(self.site as u64)),
            ("live_words", Json::U(self.live_words)),
            ("peak_live_words", Json::U(self.peak_live_words)),
            ("live_regions", Json::U(g.live_regions as u64)),
            ("pages_committed", Json::U(g.pages_committed as u64)),
            ("pages_in_use", Json::U(g.pages_in_use as u64)),
            ("pages_free", Json::U(g.pages_free as u64)),
            ("region_pages", Json::U(g.region_pages as u64)),
            (
                "occupancy",
                Json::A(g.occupancy.iter().map(|&n| Json::U(n as u64)).collect()),
            ),
            ("malloc_free_depth", Json::U(g.malloc_free_depth as u64)),
            ("d_cycles", Json::U(self.d_cycles)),
            ("d_allocs", Json::U(self.d_allocs)),
            ("d_alloc_words", Json::U(self.d_alloc_words)),
            ("d_rc_updates", Json::U(self.d_rc_updates)),
            ("d_checks", Json::U(self.d_checks)),
            ("d_rc_cycles", Json::U(self.d_rc_cycles)),
            ("d_check_cycles", Json::U(self.d_check_cycles)),
            ("d_alloc_cycles", Json::U(self.d_alloc_cycles)),
            ("d_gc_collections", Json::U(self.d_gc_collections)),
            ("d_gc_cycles", Json::U(self.d_gc_cycles)),
        ])
    }
}

/// Cumulative counter values at the previous sample, for delta taking.
// Without the `telemetry` feature the heap never pushes samples, so the
// delta machinery is only reachable from in-crate tests.
#[cfg_attr(not(feature = "telemetry"), allow(dead_code))]
#[derive(Debug, Clone, Copy, Default)]
struct Baseline {
    cycles: Cycles,
    allocs: u64,
    alloc_words: u64,
    rc_updates: u64,
    checks: u64,
    rc_cycles: Cycles,
    check_cycles: Cycles,
    alloc_cycles: Cycles,
    gc_collections: u64,
    gc_cycles: Cycles,
}

#[cfg_attr(not(feature = "telemetry"), allow(dead_code))]
impl Baseline {
    fn of(stats: &Stats, cycles: Cycles) -> Baseline {
        Baseline {
            cycles,
            allocs: stats.objects_allocated,
            alloc_words: stats.words_allocated,
            rc_updates: stats.rc_updates_full + stats.rc_updates_same,
            checks: stats.checks_sameregion
                + stats.checks_parentptr
                + stats.checks_traditional,
            rc_cycles: stats.rc_cycles,
            check_cycles: stats.check_cycles,
            alloc_cycles: stats.alloc_cycles,
            gc_collections: stats.gc_collections,
            gc_cycles: stats.gc_cycles,
        }
    }
}

/// The virtual-clock sampler: a bounded, deterministic series of
/// [`MetricsSnapshot`]s.
#[derive(Debug, Clone)]
pub struct Timeline {
    /// Ticks between samples as originally configured.
    initial_interval: u64,
    /// Current ticks between samples (doubles on decimation).
    interval: u64,
    /// Sample cap; reaching it drops every other sample.
    cap: usize,
    samples: Vec<MetricsSnapshot>,
    seq: u64,
    ticks: u64,
    last: Baseline,
    /// Cumulative samples discarded by decimation (their deltas were
    /// merged into survivors, so window sums remain exact).
    samples_dropped: u64,
}

#[cfg_attr(not(feature = "telemetry"), allow(dead_code))]
impl Timeline {
    /// A sampler taking a snapshot every `interval` ticks, decimating at
    /// `cap` retained samples (both clamped to sane minimums).
    pub fn new(interval: u64, cap: usize) -> Timeline {
        let interval = interval.max(1);
        Timeline {
            initial_interval: interval,
            interval,
            cap: cap.max(8),
            samples: Vec::new(),
            seq: 0,
            ticks: 0,
            last: Baseline::default(),
            samples_dropped: 0,
        }
    }

    /// The current sampling interval in ticks (≥ the configured interval;
    /// doubles every time the buffer decimates).
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// The sample cap.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Total ticks observed.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// The retained samples, oldest first.
    pub fn samples(&self) -> &[MetricsSnapshot] {
        &self.samples
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been taken.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Cumulative samples discarded by decimation since the last reset.
    /// Their deltas were folded into surviving samples, so this counts
    /// lost *resolution*, not lost events.
    pub fn samples_dropped(&self) -> u64 {
        self.samples_dropped
    }

    /// Extracts one metric as a series, for charting.
    pub fn series(&self, f: impl Fn(&MetricsSnapshot) -> u64) -> Vec<u64> {
        self.samples.iter().map(f).collect()
    }

    /// Clears the samples and restores the configured interval; used by
    /// `Heap::reset_metrics`.
    pub fn reset(&mut self) {
        self.samples.clear();
        self.seq = 0;
        self.ticks = 0;
        self.interval = self.initial_interval;
        self.last = Baseline::default();
        self.samples_dropped = 0;
    }

    /// Records ticks observed by the heap between samples (keeps
    /// [`Timeline::ticks`] exact even though the countdown lives in the
    /// heap for one-branch emission).
    pub(crate) fn note_ticks(&mut self, n: u64) {
        self.ticks += n;
    }

    /// Exact interleave of two timelines (shard → global roll-up; see
    /// [`crate::shard`]): samples merge-sort stably by virtual time —
    /// each shard's clock starts at zero, so this aligns shards on
    /// elapsed virtual work — with this timeline's samples winning ties,
    /// then renumber densely. Tick and drop totals sum; the interval and
    /// cap stay this timeline's. Associative (stable k-way merge with
    /// left-preference over per-shard monotone inputs), and window sums
    /// remain exact because every sample keeps its own deltas.
    pub fn merge(&mut self, other: &Timeline) {
        let mut merged = Vec::with_capacity(self.samples.len() + other.samples.len());
        let (mut i, mut j) = (0, 0);
        while i < self.samples.len() || j < other.samples.len() {
            let take_left = match (self.samples.get(i), other.samples.get(j)) {
                (Some(a), Some(b)) => a.at_cycles <= b.at_cycles,
                (Some(_), None) => true,
                (None, _) => false,
            };
            if take_left {
                merged.push(self.samples[i]);
                i += 1;
            } else {
                merged.push(other.samples[j]);
                j += 1;
            }
        }
        for (n, s) in merged.iter_mut().enumerate() {
            s.seq = n as u64;
        }
        self.samples = merged;
        self.seq = self.samples.len() as u64;
        self.ticks += other.ticks;
        self.samples_dropped += other.samples_dropped;
    }

    /// Takes a sample from the current gauges and cumulative counters.
    pub(crate) fn push(
        &mut self,
        gauges: HeapGauges,
        stats: &Stats,
        cycles: Cycles,
        site: u32,
    ) {
        let now = Baseline::of(stats, cycles);
        let last = self.last;
        self.samples.push(MetricsSnapshot {
            seq: self.seq,
            at_cycles: cycles,
            ticks: self.ticks,
            site,
            live_words: stats.live_words,
            peak_live_words: stats.peak_live_words,
            gauges,
            d_cycles: now.cycles - last.cycles,
            d_allocs: now.allocs - last.allocs,
            d_alloc_words: now.alloc_words - last.alloc_words,
            d_rc_updates: now.rc_updates - last.rc_updates,
            d_checks: now.checks - last.checks,
            d_rc_cycles: now.rc_cycles - last.rc_cycles,
            d_check_cycles: now.check_cycles - last.check_cycles,
            d_alloc_cycles: now.alloc_cycles - last.alloc_cycles,
            d_gc_collections: now.gc_collections - last.gc_collections,
            d_gc_cycles: now.gc_cycles - last.gc_cycles,
        });
        self.seq += 1;
        self.last = now;
        if self.samples.len() >= self.cap {
            self.decimate();
        }
    }

    /// Drops every other sample and doubles the interval. Deltas of a
    /// surviving sample absorb its dropped predecessor's so window sums
    /// stay exact.
    fn decimate(&mut self) {
        let before = self.samples.len();
        let mut merged = Vec::with_capacity(self.samples.len() / 2 + 1);
        let mut carry: Option<MetricsSnapshot> = None;
        for (i, s) in self.samples.drain(..).enumerate() {
            if i % 2 == 0 {
                carry = Some(s);
            } else {
                let mut keep = s;
                if let Some(c) = carry.take() {
                    keep.d_cycles += c.d_cycles;
                    keep.d_allocs += c.d_allocs;
                    keep.d_alloc_words += c.d_alloc_words;
                    keep.d_rc_updates += c.d_rc_updates;
                    keep.d_checks += c.d_checks;
                    keep.d_rc_cycles += c.d_rc_cycles;
                    keep.d_check_cycles += c.d_check_cycles;
                    keep.d_alloc_cycles += c.d_alloc_cycles;
                    keep.d_gc_collections += c.d_gc_collections;
                    keep.d_gc_cycles += c.d_gc_cycles;
                }
                merged.push(keep);
            }
        }
        // An odd trailing sample survives as-is (its deltas are intact).
        if let Some(c) = carry {
            merged.push(c);
        }
        self.samples = merged;
        self.samples_dropped += (before - self.samples.len()) as u64;
        self.interval = self.interval.saturating_mul(2);
    }

    /// Encodes the timeline as a JSON array of sample objects.
    pub fn to_json(&self) -> Json {
        Json::A(self.samples.iter().map(|s| s.to_json()).collect())
    }
}

/// Renders a series as a one-line ASCII sparkline: each value scaled
/// against the series maximum onto the ramp `" .:-=+*#%@"` (space = zero,
/// `@` = max). An empty or all-zero series renders as spaces.
pub fn sparkline(values: &[u64]) -> String {
    const RAMP: &[u8] = b" .:-=+*#%@";
    let Some(max) = std::num::NonZeroU64::new(values.iter().copied().max().unwrap_or(0))
    else {
        return " ".repeat(values.len());
    };
    values
        .iter()
        .map(|&v| {
            let idx = (v * (RAMP.len() as u64 - 1) + max.get() / 2) / max.get();
            RAMP[idx as usize] as char
        })
        .collect()
}

/// The occupancy bucket for a page with `used` of `page_words` words in
/// use: bucket `i` covers fill fractions in `(i/8, (i+1)/8]`.
pub fn occupancy_bucket(used: u32, page_words: u32) -> usize {
    debug_assert!(used >= 1 && used <= page_words);
    ((used as usize - 1) * OCCUPANCY_BUCKETS) / page_words as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tick_stats(allocs: u64) -> Stats {
        Stats { objects_allocated: allocs, words_allocated: allocs * 2, ..Stats::new() }
    }

    #[test]
    fn deltas_are_windowed() {
        let mut tl = Timeline::new(4, 16);
        tl.push(HeapGauges::default(), &tick_stats(10), 100, 1);
        tl.push(HeapGauges::default(), &tick_stats(25), 180, 2);
        let s = tl.samples();
        assert_eq!(s[0].d_allocs, 10);
        assert_eq!(s[1].d_allocs, 15);
        assert_eq!(s[1].d_cycles, 80);
        assert_eq!(s[1].site, 2);
    }

    #[test]
    fn decimation_halves_and_preserves_delta_sums() {
        let mut tl = Timeline::new(1, 8);
        for i in 1..=8u64 {
            tl.push(HeapGauges::default(), &tick_stats(i * 10), i * 100, 0);
        }
        // Cap reached: 8 samples decimate to 4 and the interval doubles.
        assert_eq!(tl.len(), 4);
        assert_eq!(tl.interval(), 2);
        let total: u64 = tl.samples().iter().map(|s| s.d_allocs).sum();
        assert_eq!(total, 80, "window sums survive decimation");
        let seqs: Vec<u64> = tl.samples().iter().map(|s| s.seq).collect();
        assert_eq!(seqs, vec![1, 3, 5, 7]);
        assert_eq!(tl.samples_dropped(), 4);
    }

    #[test]
    fn samples_dropped_accumulates_across_decimations() {
        let mut tl = Timeline::new(1, 8);
        assert_eq!(tl.samples_dropped(), 0);
        for i in 1..=16u64 {
            tl.push(HeapGauges::default(), &tick_stats(i), i, 0);
        }
        // Three decimations: at pushes 8, 12, and 16 the buffer refills
        // to cap and halves again, dropping 4 each time.
        assert_eq!(tl.samples_dropped(), 12);
        tl.reset();
        assert_eq!(tl.samples_dropped(), 0);
    }

    #[test]
    fn merge_interleaves_by_virtual_time_and_renumbers() {
        let mut a = Timeline::new(1, 16);
        a.push(HeapGauges::default(), &tick_stats(10), 100, 1);
        a.push(HeapGauges::default(), &tick_stats(20), 300, 1);
        a.note_ticks(2);
        let mut b = Timeline::new(1, 16);
        b.push(HeapGauges::default(), &tick_stats(5), 100, 2);
        b.push(HeapGauges::default(), &tick_stats(9), 200, 2);
        b.note_ticks(2);
        a.merge(&b);
        assert_eq!(a.len(), 4);
        let at: Vec<u64> = a.series(|s| s.at_cycles);
        assert_eq!(at, vec![100, 100, 200, 300]);
        // Tie at 100: the left (merge target) sample comes first.
        assert_eq!(a.samples()[0].site, 1);
        assert_eq!(a.samples()[1].site, 2);
        let seqs: Vec<u64> = a.series(|s| s.seq);
        assert_eq!(seqs, vec![0, 1, 2, 3]);
        assert_eq!(a.ticks(), 4);
        // Window sums stay exact: every sample kept its own deltas.
        let total: u64 = a.series(|s| s.d_allocs).iter().sum();
        assert_eq!(total, 20 + 9);
    }

    #[test]
    fn merge_is_associative() {
        let mk = |base: u64, site: u32| {
            let mut tl = Timeline::new(1, 16);
            for i in 1..=3u64 {
                tl.push(HeapGauges::default(), &tick_stats(i), base + i * 10, site);
            }
            tl
        };
        let (a, b, c) = (mk(0, 1), mk(5, 2), mk(11, 3));
        let mut left = {
            let mut t = a.clone();
            t.merge(&b);
            t.merge(&c);
            t
        };
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left.to_json().render(), right.to_json().render());
        assert_eq!(left.ticks(), right.ticks());
        // And stability actually matters: swapping merge order reorders
        // equal-time samples, so the result differs.
        left.merge(&a);
        right.merge(&a);
        assert_eq!(left.to_json().render(), right.to_json().render());
    }

    #[test]
    fn reset_restores_initial_interval() {
        let mut tl = Timeline::new(2, 8);
        for i in 1..=9u64 {
            tl.push(HeapGauges::default(), &tick_stats(i), i, 0);
        }
        assert!(tl.interval() > 2);
        tl.reset();
        assert_eq!(tl.interval(), 2);
        assert!(tl.is_empty());
        assert_eq!(tl.ticks(), 0);
    }

    #[test]
    fn sparkline_scales_to_ramp() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[0, 0]), "  ");
        let line = sparkline(&[0, 5, 10]);
        assert_eq!(line.len(), 3);
        assert!(line.starts_with(' '));
        assert!(line.ends_with('@'));
    }

    #[test]
    fn occupancy_buckets_cover_the_page() {
        assert_eq!(occupancy_bucket(1, 1024), 0);
        assert_eq!(occupancy_bucket(128, 1024), 0);
        assert_eq!(occupancy_bucket(129, 1024), 1);
        assert_eq!(occupancy_bucket(1024, 1024), 7);
    }

    #[test]
    fn json_has_stable_keys() {
        let mut tl = Timeline::new(1, 8);
        tl.push(HeapGauges::default(), &tick_stats(1), 10, 3);
        let txt = tl.to_json().render();
        for key in ["seq", "at_cycles", "pages_in_use", "occupancy", "d_gc_cycles", "site"] {
            assert!(txt.contains(key), "missing {key} in {txt}");
        }
    }
}
