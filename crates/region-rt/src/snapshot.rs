//! Post-mortem heap snapshots.
//!
//! A [`HeapSnapshot`] is a byte-deterministic capture of the full heap
//! state at one virtual-clock instant: the region tree with per-region
//! occupancy and span-derived aggregates, the page → owner map with
//! per-page fill, the allocator free lists, and per-`(region, site)`
//! retained words folded from the live-object tables. Snapshots are taken
//! at program exit, at every GC, and on a trap (before the unwind clears
//! the heap), then serialized with the schema tag [`SNAPSHOT_SCHEMA`] for
//! the `rc-inspect` offline analyzer.
//!
//! The capture is exhaustively cross-checked: [`HeapSnapshot::verify_against`]
//! asserts the identity `live_words == region + malloc + gc requested
//! words` along three independent paths (region tree, page map, site
//! table), so a snapshot that loads is also known to be self-consistent.

mod restore;

use std::collections::BTreeMap;

use crate::addr::{Addr, WORDS_PER_PAGE};
use crate::heap::Heap;
use crate::json::Json;
use crate::page::PageOwner;
use crate::region::TRADITIONAL;
use crate::stats::Stats;

/// Schema identifier stamped into every serialized snapshot (registered in
/// `rc_bench::schema` alongside the other artifact schemas).
pub const SNAPSHOT_SCHEMA: &str = "rc-bench-snapshot/v1";

/// Why a snapshot was captured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotReason {
    /// Orderly program exit (the final heap state).
    Exit,
    /// Immediately after a GC pause (what survived the collection).
    Gc,
    /// An injected fault trapped; captured before the unwind tears the
    /// heap down, so the dump shows the pre-unwind state.
    Trap,
}

impl SnapshotReason {
    /// The serialized tag.
    pub fn as_str(self) -> &'static str {
        match self {
            SnapshotReason::Exit => "exit",
            SnapshotReason::Gc => "gc",
            SnapshotReason::Trap => "trap",
        }
    }

    /// Parses a serialized tag.
    pub fn parse(s: &str) -> Option<SnapshotReason> {
        match s {
            "exit" => Some(SnapshotReason::Exit),
            "gc" => Some(SnapshotReason::Gc),
            "trap" => Some(SnapshotReason::Trap),
            _ => None,
        }
    }
}

/// One region's state at capture time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionSnapshot {
    /// Region index (== span index when spans were recorded).
    pub region: u32,
    /// Parent region index; `None` only for the traditional region.
    pub parent: Option<u32>,
    /// Live at capture (doomed regions are still alive: their pages are
    /// held until the deferred reclaim fires).
    pub alive: bool,
    /// Deferred-deletion mode.
    pub doomed: bool,
    /// External reference count (including pins).
    pub rc: i64,
    /// Pins included in `rc`.
    pub pins: i64,
    /// Depth-first preorder number (interval start under gap numbering).
    pub dfs_id: u64,
    /// One past the subtree's largest id (interval end).
    pub dfs_nextid: u64,
    /// Virtual time of creation.
    pub born_at: u64,
    /// Words held by the region's two allocators (0 once reclaimed).
    pub live_words: u64,
    /// Live allocation-log entries across both allocators.
    pub objects: u64,
    /// Pages owned by the region's allocators, sorted.
    pub pages: Vec<u32>,
    /// Span aggregate: objects ever allocated here (0 when spans off).
    pub allocs: u64,
    /// Span aggregate: words ever allocated here.
    pub alloc_words: u64,
    /// Span aggregate: rc increments + decrements charged here.
    pub rc_updates: u64,
    /// Span aggregate: region checks against this region.
    pub checks: u64,
    /// Span aggregate: failed checks.
    pub checks_failed: u64,
    /// Span aggregate: words freed when the region was reclaimed.
    pub freed_words: u64,
    /// Virtual time of reclamation (`None` while live or spans off).
    pub closed_at: Option<u64>,
    /// Virtual time of the last retained span note touching this region
    /// (0 when spans off or every note was decimated) — the idle time the
    /// `leaks` query ranks by.
    pub last_touch: u64,
}

/// Page ownership in a snapshot (mirrors [`PageOwner`] minus the id
/// newtype so it round-trips through JSON).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapOwner {
    /// In the free pool.
    Free,
    /// Owned by the conservative-GC heap.
    Gc,
    /// Owned by a region's allocators (malloc pages belong to the
    /// traditional region, id 0).
    Region(u32),
}

impl SnapOwner {
    /// Serialized form: −1 free, −2 gc, otherwise the region id.
    pub fn to_i64(self) -> i64 {
        match self {
            SnapOwner::Free => -1,
            SnapOwner::Gc => -2,
            SnapOwner::Region(r) => r as i64,
        }
    }

    /// Parses the serialized form.
    pub fn from_i64(v: i64) -> Option<SnapOwner> {
        match v {
            -1 => Some(SnapOwner::Free),
            -2 => Some(SnapOwner::Gc),
            r if (0..=u32::MAX as i64).contains(&r) => Some(SnapOwner::Region(r as u32)),
            _ => None,
        }
    }
}

impl From<PageOwner> for SnapOwner {
    fn from(o: PageOwner) -> SnapOwner {
        match o {
            PageOwner::Free => SnapOwner::Free,
            PageOwner::Gc => SnapOwner::Gc,
            PageOwner::Region(r) => SnapOwner::Region(r.0),
        }
    }
}

/// One committed page's occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageSnapshot {
    /// Page index (page 0 is reserved and never appears).
    pub page: u32,
    /// Current owner per the page map.
    pub owner: SnapOwner,
    /// Live payload words on this page: allocator fill for region pages,
    /// folded live malloc/gc objects for traditional/GC pages.
    pub used_words: u32,
}

/// Retained words attributed to one `(region, allocation site)` pair.
/// Malloc and GC objects attribute to the traditional region (id 0); site
/// is the 1-based source line (0 = unattributed, e.g. spans disabled).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiteRetained {
    /// Region holding the objects.
    pub region: u32,
    /// Source line that allocated them.
    pub site: u32,
    /// Live objects from this site.
    pub objects: u64,
    /// Live payload words from this site.
    pub words: u64,
}

/// A deterministic capture of the full heap state at one instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeapSnapshot {
    /// Why the snapshot was taken.
    pub reason: SnapshotReason,
    /// Virtual clock at capture.
    pub at_cycles: u64,
    /// Free-form label set by the dumping tool (e.g. `workload/config`);
    /// `leaks` renders sites as `label:line`.
    pub label: String,
    /// Full counter state at capture.
    pub stats: Stats,
    /// Every region ever created, in creation (= index) order.
    pub regions: Vec<RegionSnapshot>,
    /// Every committed page (1..page_count), in index order.
    pub pages: Vec<PageSnapshot>,
    /// The page free pool in release order (tail recycled first).
    pub free_chain: Vec<u32>,
    /// Malloc free slots per size class (parallel to `SIZE_CLASSES`).
    pub malloc_free_depths: Vec<u32>,
    /// GC free slots per size class.
    pub gc_free_depths: Vec<u32>,
    /// Live malloc allocations.
    pub malloc_live_objects: u64,
    /// Live malloc payload words.
    pub malloc_live_words: u64,
    /// Live GC objects.
    pub gc_live_objects: u64,
    /// Live GC payload (requested) words.
    pub gc_live_words: u64,
    /// Live GC slot words (`gc_slot_words - gc_live_words` is the GC
    /// heap's internal fragmentation).
    pub gc_slot_words: u64,
    /// Retained words per `(region, site)`, sorted by key.
    pub sites: Vec<SiteRetained>,
}

/// Adds `words` of one object starting at `addr` into the per-page fold,
/// page by page (class objects never straddle a page; span objects cover
/// whole pages from word 0).
fn fold_pages(used: &mut [u32], addr: Addr, words: u32) {
    let mut left = words;
    let mut page = addr.page() as usize;
    let mut room = (WORDS_PER_PAGE as u32) - addr.word();
    while left > 0 && page < used.len() {
        let chunk = left.min(room);
        used[page] += chunk;
        left -= chunk;
        page += 1;
        room = WORDS_PER_PAGE as u32;
    }
}

impl Heap {
    /// Captures a snapshot of the current heap state. Read-only: charges
    /// no cycles, mutates nothing, and is safe at any point — including
    /// after a fault, where the capture shows the pre-unwind heap.
    pub fn snapshot(&self, reason: SnapshotReason) -> HeapSnapshot {
        let spans = self.span_tree.as_deref();

        // Last-touch per region, from the retained span notes.
        let mut last_touch = vec![0u64; self.regions.len()];
        if let Some(tree) = spans {
            for note in tree.notes() {
                let r = note.region() as usize;
                if r < last_touch.len() && note.at() > last_touch[r] {
                    last_touch[r] = note.at();
                }
            }
        }

        let mut used = vec![0u32; self.store.page_count()];
        let mut sites: BTreeMap<(u32, u32), (u64, u64)> = BTreeMap::new();

        let mut regions = Vec::with_capacity(self.regions.len());
        for (i, rd) in self.regions.iter().enumerate() {
            let mut pages: Vec<u32> = Vec::new();
            let mut objects = 0u64;
            for alloc in [&rd.normal, &rd.pointerfree] {
                pages.extend_from_slice(alloc.pages());
                objects += alloc.objs().len() as u64;
                for (&p, &fill) in alloc.pages().iter().zip(alloc.page_fill()) {
                    used[p as usize] += fill;
                }
                for rec in alloc.objs() {
                    let words =
                        self.types.get(rec.ty).size_words() as u64 * rec.count as u64;
                    let e = sites.entry((i as u32, rec.site)).or_insert((0, 0));
                    e.0 += 1;
                    e.1 += words;
                }
            }
            pages.sort_unstable();
            let span = spans.and_then(|t| t.spans().get(i));
            regions.push(RegionSnapshot {
                region: i as u32,
                parent: rd.parent.map(|p| p.0),
                alive: rd.alive,
                doomed: rd.doomed,
                rc: rd.rc,
                pins: rd.pins,
                dfs_id: rd.id,
                dfs_nextid: rd.nextid,
                born_at: rd.born_at,
                live_words: rd.normal.used_words() + rd.pointerfree.used_words(),
                objects,
                pages,
                allocs: span.map_or(0, |s| s.allocs),
                alloc_words: span.map_or(0, |s| s.alloc_words),
                rc_updates: span.map_or(0, |s| s.rc_updates),
                checks: span.map_or(0, |s| s.checks),
                checks_failed: span.map_or(0, |s| s.checks_failed),
                freed_words: span.map_or(0, |s| s.freed_words),
                closed_at: span.and_then(|s| s.closed_at),
                last_touch: last_touch[i],
            });
        }

        // Live malloc objects: per-page fold plus site attribution. The
        // HashMap's iteration order is arbitrary, but both folds are
        // commutative sums into keyed slots, so the result is
        // deterministic regardless.
        let mut malloc_live_objects = 0u64;
        let mut malloc_live_words = 0u64;
        for (addr, obj) in self.malloc.live_objects() {
            malloc_live_objects += 1;
            malloc_live_words += obj.words as u64;
            fold_pages(&mut used, addr, obj.words);
            let e = sites.entry((TRADITIONAL.0, obj.site)).or_insert((0, 0));
            e.0 += 1;
            e.1 += obj.words as u64;
        }

        let mut gc_live_objects = 0u64;
        let mut gc_live_words = 0u64;
        let mut gc_slot_words = 0u64;
        for (addr, obj) in self.gc.live_objects() {
            gc_live_objects += 1;
            gc_live_words += obj.words as u64;
            gc_slot_words += obj.slot_words as u64;
            fold_pages(&mut used, addr, obj.words);
            let e = sites.entry((TRADITIONAL.0, obj.site)).or_insert((0, 0));
            e.0 += 1;
            e.1 += obj.words as u64;
        }

        let pages = (1..self.store.page_count() as u32)
            .map(|p| PageSnapshot {
                page: p,
                owner: self.store.owner(p).into(),
                used_words: used[p as usize],
            })
            .collect();

        HeapSnapshot {
            reason,
            at_cycles: self.clock.cycles(),
            label: String::new(),
            stats: self.stats.clone(),
            regions,
            pages,
            free_chain: self.store.free_chain().to_vec(),
            malloc_free_depths: self.malloc.free_list_depths(),
            gc_free_depths: self.gc.free_list_depths(),
            malloc_live_objects,
            malloc_live_words,
            gc_live_objects,
            gc_live_words,
            gc_slot_words,
            sites: sites
                .into_iter()
                .map(|((region, site), (objects, words))| SiteRetained {
                    region,
                    site,
                    objects,
                    words,
                })
                .collect(),
        }
    }
}

/// `Some(n)` → `n`, `None` → −1 (no `null` in the hand-rolled JSON).
fn opt_json(v: Option<u64>) -> Json {
    match v {
        Some(n) => Json::U(n),
        None => Json::I(-1),
    }
}

impl HeapSnapshot {
    /// Live words across all regions (doomed included), the snapshot-side
    /// counterpart of `Heap::region_live_words`.
    pub fn region_live_words(&self) -> u64 {
        self.regions.iter().map(|r| r.live_words).sum()
    }

    /// The identity total: region + malloc + gc live payload words.
    pub fn total_live_words(&self) -> u64 {
        self.region_live_words() + self.malloc_live_words + self.gc_live_words
    }

    /// Serializes to the `rc-bench-snapshot/v1` JSON document.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema", Json::s(SNAPSHOT_SCHEMA)),
            ("reason", Json::s(self.reason.as_str())),
            ("at_cycles", Json::U(self.at_cycles)),
            ("label", Json::s(self.label.clone())),
            ("stats", self.stats.to_json()),
            (
                "regions",
                Json::A(
                    self.regions
                        .iter()
                        .map(|r| {
                            Json::obj(vec![
                                ("region", Json::U(r.region as u64)),
                                ("parent", opt_json(r.parent.map(u64::from))),
                                ("alive", Json::Bool(r.alive)),
                                ("doomed", Json::Bool(r.doomed)),
                                ("rc", Json::I(r.rc)),
                                ("pins", Json::I(r.pins)),
                                ("dfs_id", Json::U(r.dfs_id)),
                                ("dfs_nextid", Json::U(r.dfs_nextid)),
                                ("born_at", Json::U(r.born_at)),
                                ("live_words", Json::U(r.live_words)),
                                ("objects", Json::U(r.objects)),
                                (
                                    "pages",
                                    Json::A(
                                        r.pages.iter().map(|&p| Json::U(p as u64)).collect(),
                                    ),
                                ),
                                ("allocs", Json::U(r.allocs)),
                                ("alloc_words", Json::U(r.alloc_words)),
                                ("rc_updates", Json::U(r.rc_updates)),
                                ("checks", Json::U(r.checks)),
                                ("checks_failed", Json::U(r.checks_failed)),
                                ("freed_words", Json::U(r.freed_words)),
                                ("closed_at", opt_json(r.closed_at)),
                                ("last_touch", Json::U(r.last_touch)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "pages",
                Json::A(
                    self.pages
                        .iter()
                        .map(|p| {
                            Json::obj(vec![
                                ("page", Json::U(p.page as u64)),
                                ("owner", Json::I(p.owner.to_i64())),
                                ("used_words", Json::U(p.used_words as u64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "free_chain",
                Json::A(self.free_chain.iter().map(|&p| Json::U(p as u64)).collect()),
            ),
            (
                "malloc_free_depths",
                Json::A(
                    self.malloc_free_depths.iter().map(|&d| Json::U(d as u64)).collect(),
                ),
            ),
            (
                "gc_free_depths",
                Json::A(self.gc_free_depths.iter().map(|&d| Json::U(d as u64)).collect()),
            ),
            ("malloc_live_objects", Json::U(self.malloc_live_objects)),
            ("malloc_live_words", Json::U(self.malloc_live_words)),
            ("gc_live_objects", Json::U(self.gc_live_objects)),
            ("gc_live_words", Json::U(self.gc_live_words)),
            ("gc_slot_words", Json::U(self.gc_slot_words)),
            (
                "sites",
                Json::A(
                    self.sites
                        .iter()
                        .map(|s| {
                            Json::obj(vec![
                                ("region", Json::U(s.region as u64)),
                                ("site", Json::U(s.site as u64)),
                                ("objects", Json::U(s.objects)),
                                ("words", Json::U(s.words)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Renders the pretty-printed document with a trailing newline (the
    /// byte-exact on-disk form the determinism gate `cmp`s).
    pub fn render(&self) -> String {
        let mut out = self.to_json().render_pretty();
        out.push('\n');
        out
    }

    /// Parses a serialized snapshot, strictly.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or malformed field, and
    /// rejects documents with a different schema tag.
    pub fn from_json(doc: &Json) -> Result<HeapSnapshot, String> {
        let schema = doc
            .get("schema")
            .and_then(Json::as_str)
            .ok_or_else(|| "missing 'schema'".to_string())?;
        if schema != SNAPSHOT_SCHEMA {
            return Err(format!("schema mismatch: got '{schema}', want '{SNAPSHOT_SCHEMA}'"));
        }
        let u64_field = |d: &Json, key: &str| -> Result<u64, String> {
            d.get(key).and_then(Json::as_u64).ok_or_else(|| format!("missing '{key}'"))
        };
        let u32_field = |d: &Json, key: &str| -> Result<u32, String> {
            let v = u64_field(d, key)?;
            u32::try_from(v).map_err(|_| format!("'{key}' out of range: {v}"))
        };
        let i64_field = |d: &Json, key: &str| -> Result<i64, String> {
            match d.get(key) {
                Some(Json::I(n)) => Ok(*n),
                Some(Json::U(n)) if *n <= i64::MAX as u64 => Ok(*n as i64),
                _ => Err(format!("missing '{key}'")),
            }
        };
        let bool_field = |d: &Json, key: &str| -> Result<bool, String> {
            d.get(key).and_then(Json::as_bool).ok_or_else(|| format!("missing '{key}'"))
        };
        // −1 encodes None (no null in this JSON dialect).
        let opt_field = |d: &Json, key: &str| -> Result<Option<u64>, String> {
            match d.get(key) {
                Some(Json::I(-1)) => Ok(None),
                Some(j) => {
                    j.as_u64().map(Some).ok_or_else(|| format!("malformed '{key}'"))
                }
                None => Err(format!("missing '{key}'")),
            }
        };
        let u32_array = |d: &Json, key: &str| -> Result<Vec<u32>, String> {
            d.get(key)
                .and_then(Json::as_array)
                .ok_or_else(|| format!("missing '{key}'"))?
                .iter()
                .map(|j| {
                    j.as_u64()
                        .and_then(|v| u32::try_from(v).ok())
                        .ok_or_else(|| format!("malformed '{key}' entry"))
                })
                .collect()
        };

        let reason_str = doc
            .get("reason")
            .and_then(Json::as_str)
            .ok_or_else(|| "missing 'reason'".to_string())?;
        let reason = SnapshotReason::parse(reason_str)
            .ok_or_else(|| format!("unknown reason '{reason_str}'"))?;
        let label = doc
            .get("label")
            .and_then(Json::as_str)
            .ok_or_else(|| "missing 'label'".to_string())?
            .to_string();
        let stats =
            Stats::from_json(doc.get("stats").ok_or_else(|| "missing 'stats'".to_string())?)?;

        let regions = doc
            .get("regions")
            .and_then(Json::as_array)
            .ok_or_else(|| "missing 'regions'".to_string())?
            .iter()
            .map(|r| -> Result<RegionSnapshot, String> {
                Ok(RegionSnapshot {
                    region: u32_field(r, "region")?,
                    parent: opt_field(r, "parent")?
                        .map(|p| u32::try_from(p).map_err(|_| "parent out of range"))
                        .transpose()?,
                    alive: bool_field(r, "alive")?,
                    doomed: bool_field(r, "doomed")?,
                    rc: i64_field(r, "rc")?,
                    pins: i64_field(r, "pins")?,
                    dfs_id: u64_field(r, "dfs_id")?,
                    dfs_nextid: u64_field(r, "dfs_nextid")?,
                    born_at: u64_field(r, "born_at")?,
                    live_words: u64_field(r, "live_words")?,
                    objects: u64_field(r, "objects")?,
                    pages: u32_array(r, "pages")?,
                    allocs: u64_field(r, "allocs")?,
                    alloc_words: u64_field(r, "alloc_words")?,
                    rc_updates: u64_field(r, "rc_updates")?,
                    checks: u64_field(r, "checks")?,
                    checks_failed: u64_field(r, "checks_failed")?,
                    freed_words: u64_field(r, "freed_words")?,
                    closed_at: opt_field(r, "closed_at")?,
                    last_touch: u64_field(r, "last_touch")?,
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        // Structural checks the restore layer would otherwise trip over
        // with a less precise message: region rows must be the identity
        // sequence (a duplicated id is a classic splice corruption).
        for (i, r) in regions.iter().enumerate() {
            if r.region as usize != i {
                return Err(format!(
                    "regions[{i}].region is {} (duplicate or out-of-order region id)",
                    r.region
                ));
            }
        }

        let pages = doc
            .get("pages")
            .and_then(Json::as_array)
            .ok_or_else(|| "missing 'pages'".to_string())?
            .iter()
            .map(|p| -> Result<PageSnapshot, String> {
                let owner = i64_field(p, "owner")?;
                Ok(PageSnapshot {
                    page: u32_field(p, "page")?,
                    owner: SnapOwner::from_i64(owner)
                        .ok_or_else(|| format!("malformed page owner {owner}"))?,
                    used_words: u32_field(p, "used_words")?,
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        for (j, p) in pages.iter().enumerate() {
            if p.page as usize != j + 1 {
                return Err(format!(
                    "pages[{j}].page is {} (pages must cover 1..=count in order)",
                    p.page
                ));
            }
            if p.used_words as usize > WORDS_PER_PAGE {
                return Err(format!(
                    "pages[{j}].used_words {} exceeds the page size",
                    p.used_words
                ));
            }
        }

        let sites = doc
            .get("sites")
            .and_then(Json::as_array)
            .ok_or_else(|| "missing 'sites'".to_string())?
            .iter()
            .map(|s| -> Result<SiteRetained, String> {
                Ok(SiteRetained {
                    region: u32_field(s, "region")?,
                    site: u32_field(s, "site")?,
                    objects: u64_field(s, "objects")?,
                    words: u64_field(s, "words")?,
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        for (k, w) in sites.windows(2).enumerate() {
            if (w[1].region, w[1].site) <= (w[0].region, w[0].site) {
                return Err(format!(
                    "sites[{}] breaks the strict (region, site) sort order",
                    k + 1
                ));
            }
        }

        Ok(HeapSnapshot {
            reason,
            at_cycles: u64_field(doc, "at_cycles")?,
            label,
            stats,
            regions,
            pages,
            free_chain: u32_array(doc, "free_chain")?,
            malloc_free_depths: u32_array(doc, "malloc_free_depths")?,
            gc_free_depths: u32_array(doc, "gc_free_depths")?,
            malloc_live_objects: u64_field(doc, "malloc_live_objects")?,
            malloc_live_words: u64_field(doc, "malloc_live_words")?,
            gc_live_objects: u64_field(doc, "gc_live_objects")?,
            gc_live_words: u64_field(doc, "gc_live_words")?,
            gc_slot_words: u64_field(doc, "gc_slot_words")?,
            sites,
        })
    }

    /// Re-captures `heap` with this snapshot's reason and label — the
    /// restore fixpoint probe: for a heap rebuilt by
    /// [`Heap::restore`](crate::heap::Heap::restore) from `self`,
    /// `self.resnapshot(&restored).render()` must equal `self.render()`
    /// byte for byte.
    pub fn resnapshot(&self, heap: &Heap) -> HeapSnapshot {
        let mut s = heap.snapshot(self.reason);
        s.label = self.label.clone();
        s
    }

    /// Cross-checks the snapshot against the live heap it was taken from
    /// (and internally against itself): counter equality, the live-word
    /// identity along the region, page, and site paths, page-map totals,
    /// and span-aggregate agreement when spans are attached.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first inconsistency.
    pub fn verify_against(&self, heap: &Heap) -> Result<(), String> {
        if self.at_cycles != heap.clock.cycles() {
            return Err(format!(
                "clock mismatch: snapshot {} vs heap {}",
                self.at_cycles,
                heap.clock.cycles()
            ));
        }
        if self.stats != heap.stats {
            return Err("stats mismatch".to_string());
        }
        if self.regions.len() != heap.region_count() {
            return Err(format!(
                "region count mismatch: snapshot {} vs heap {}",
                self.regions.len(),
                heap.region_count()
            ));
        }
        // Live-word identity, path 1: the region tree. Only alive regions
        // hold words (reclaim zeroes the allocators), so the unfiltered
        // snapshot sum must equal the heap's alive-filtered gauge.
        let region_words = self.region_live_words();
        if region_words != heap.region_live_words() {
            return Err(format!(
                "region live words mismatch: snapshot {} vs heap {}",
                region_words,
                heap.region_live_words()
            ));
        }
        let total = self.total_live_words();
        if total != heap.stats.live_words {
            return Err(format!(
                "live-word identity broken: region {} + malloc {} + gc {} = {} vs stats.live_words {}",
                region_words,
                self.malloc_live_words,
                self.gc_live_words,
                total,
                heap.stats.live_words
            ));
        }
        // Path 2: the page map. Every live payload word lies on exactly
        // one committed page.
        let page_words: u64 = self.pages.iter().map(|p| p.used_words as u64).sum();
        if page_words != total {
            return Err(format!(
                "page-map words {page_words} != live words {total}"
            ));
        }
        if self.pages.len() != heap.page_store().pages_committed() {
            return Err(format!(
                "page count mismatch: snapshot {} vs store {}",
                self.pages.len(),
                heap.page_store().pages_committed()
            ));
        }
        let free_pages =
            self.pages.iter().filter(|p| p.owner == SnapOwner::Free).count();
        if free_pages != self.free_chain.len()
            || self.free_chain.len() != heap.page_store().pages_free()
        {
            return Err(format!(
                "free pool mismatch: {} free-owned pages, chain of {}, store reports {}",
                free_pages,
                self.free_chain.len(),
                heap.page_store().pages_free()
            ));
        }
        // Path 3: site attribution. The fold partitions the same live
        // objects, so totals must match exactly.
        let site_words: u64 = self.sites.iter().map(|s| s.words).sum();
        if site_words != total {
            return Err(format!("site-attributed words {site_words} != live words {total}"));
        }
        let site_objects: u64 = self.sites.iter().map(|s| s.objects).sum();
        let live_objects: u64 = self.regions.iter().map(|r| r.objects).sum::<u64>()
            + self.malloc_live_objects
            + self.gc_live_objects;
        if site_objects != live_objects {
            return Err(format!(
                "site-attributed objects {site_objects} != live objects {live_objects}"
            ));
        }
        // Span agreement: the snapshot copied the aggregates, so check a
        // global invariant instead of repeating the copy — every closed
        // span must correspond to a non-alive region and vice versa.
        if let Some(tree) = heap.spans() {
            for (r, span) in self.regions.iter().zip(tree.spans()) {
                if r.alive != span.closed_at.is_none() {
                    return Err(format!(
                        "span/region liveness disagreement at region {}",
                        r.region
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::TypeLayout;

    /// Exercises regions, malloc, and gc in one heap.
    fn worked_heap() -> Heap {
        let mut h = Heap::with_defaults();
        let ty = h.register_type(TypeLayout::data("cell", 3));
        let big = h.register_type(TypeLayout::data("big", 2000));
        h.enable_spans(1024);
        let r1 = h.new_region();
        let r2 = h.new_subregion(r1).unwrap();
        h.set_trace_site(7);
        h.ralloc(r1, ty).unwrap();
        h.rarray_alloc(r1, ty, 4).unwrap();
        h.set_trace_site(12);
        h.ralloc(r2, big).unwrap();
        let m = h.m_alloc(ty, 2).unwrap();
        h.m_alloc(big, 1).unwrap();
        h.m_free(m).unwrap();
        let g = h.gc_alloc(ty, 5).unwrap();
        h.gc_alloc(ty, 1).unwrap();
        h.gc_collect(&[g.raw()]);
        h.delete_region(r2).unwrap();
        h
    }

    #[test]
    fn capture_is_consistent_and_deterministic() {
        let h = worked_heap();
        let snap = h.snapshot(SnapshotReason::Exit);
        snap.verify_against(&h).unwrap();
        let again = h.snapshot(SnapshotReason::Exit);
        assert_eq!(snap, again, "capture is a pure function of heap state");
        assert_eq!(snap.render(), again.render(), "rendering is byte-deterministic");
    }

    #[test]
    fn json_round_trip_is_exact() {
        let h = worked_heap();
        let mut snap = h.snapshot(SnapshotReason::Trap);
        snap.label = "unit/rc".to_string();
        let text = snap.render();
        let doc = Json::parse(&text).unwrap();
        let back = HeapSnapshot::from_json(&doc).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.render(), text);
    }

    #[test]
    fn sites_attribute_retained_words_by_line() {
        let h = worked_heap();
        let snap = h.snapshot(SnapshotReason::Exit);
        // Region 1 allocated at site 7: one cell + a 4-element array.
        let s = snap
            .sites
            .iter()
            .find(|s| s.region == 1 && s.site == 7)
            .expect("site 7 attributed");
        assert_eq!((s.objects, s.words), (2, 15));
        // The site fold partitions all live words.
        assert_eq!(
            snap.sites.iter().map(|s| s.words).sum::<u64>(),
            snap.total_live_words()
        );
    }

    #[test]
    fn deleted_region_shows_closed_and_empty() {
        let h = worked_heap();
        let snap = h.snapshot(SnapshotReason::Exit);
        let r2 = &snap.regions[2];
        assert!(!r2.alive);
        assert_eq!(r2.live_words, 0);
        assert!(r2.pages.is_empty());
        assert!(r2.closed_at.is_some(), "span recorded the reclamation");
        assert!(r2.freed_words > 0);
    }

    #[test]
    fn page_map_partitions_live_words() {
        let h = worked_heap();
        let snap = h.snapshot(SnapshotReason::Exit);
        let by_pages: u64 = snap.pages.iter().map(|p| p.used_words as u64).sum();
        assert_eq!(by_pages, h.stats.live_words);
        // Free pages never carry words.
        for p in &snap.pages {
            if p.owner == SnapOwner::Free {
                assert_eq!(p.used_words, 0, "page {} free but occupied", p.page);
            }
        }
    }

    #[test]
    fn reason_and_owner_tags_round_trip() {
        for r in [SnapshotReason::Exit, SnapshotReason::Gc, SnapshotReason::Trap] {
            assert_eq!(SnapshotReason::parse(r.as_str()), Some(r));
        }
        assert_eq!(SnapshotReason::parse("bogus"), None);
        for o in [SnapOwner::Free, SnapOwner::Gc, SnapOwner::Region(0), SnapOwner::Region(9)] {
            assert_eq!(SnapOwner::from_i64(o.to_i64()), Some(o));
        }
        assert_eq!(SnapOwner::from_i64(-3), None);
    }

    #[test]
    fn from_json_rejects_wrong_schema_and_missing_fields() {
        let h = worked_heap();
        let snap = h.snapshot(SnapshotReason::Exit);
        let mut doc = snap.to_json();
        if let Json::O(fields) = &mut doc {
            fields[0].1 = Json::s("rc-bench-trajectory/v1");
        }
        assert!(HeapSnapshot::from_json(&doc).unwrap_err().contains("schema mismatch"));
        if let Json::O(fields) = &mut doc {
            fields.remove(0);
        }
        assert!(HeapSnapshot::from_json(&doc).unwrap_err().contains("schema"));
    }

    #[test]
    fn snapshot_without_spans_zeroes_aggregates() {
        let mut h = Heap::with_defaults();
        let ty = h.register_type(TypeLayout::data("cell", 2));
        let r = h.new_region();
        h.ralloc(r, ty).unwrap();
        let snap = h.snapshot(SnapshotReason::Exit);
        snap.verify_against(&h).unwrap();
        let rs = &snap.regions[r.0 as usize];
        assert_eq!((rs.allocs, rs.alloc_words, rs.last_touch), (0, 0, 0));
        assert_eq!(rs.closed_at, None);
        assert_eq!(rs.live_words, 2);
        // Without a published site, retained words fold under site 0.
        assert!(snap.sites.iter().any(|s| s.region == r.0 && s.site == 0 && s.words == 2));
    }
}
