//! The `malloc/free` baseline ("lea" in Figure 7).
//!
//! The paper compares RC against gcc with "Doug Lea's malloc/free
//! replacement library", and for originally-region-based benchmarks it uses
//! "a simple region-emulation library that uses malloc and free to allocate
//! and free each individual object". This module provides a size-class
//! free-list allocator over the shared page store; malloc pages belong to
//! the traditional region, so `regionof` on a malloc'd object reports the
//! traditional region exactly as the paper specifies.

use std::collections::HashMap;

use crate::addr::{Addr, WORDS_PER_PAGE};
use crate::error::RtError;
use crate::heap::Heap;
use crate::layout::TypeId;
use crate::page::PageOwner;
use crate::region::TRADITIONAL;

/// Size classes in payload words. The final class is one full page.
pub const SIZE_CLASSES: [usize; 11] = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, WORDS_PER_PAGE];

/// Picks the smallest class holding `words`, or `None` for oversized
/// allocations (which get dedicated page spans).
pub fn size_class(words: usize) -> Option<usize> {
    SIZE_CLASSES.iter().position(|&c| c >= words)
}

/// Metadata for one live malloc allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MallocObj {
    /// Element type.
    pub ty: TypeId,
    /// Element count.
    pub count: u32,
    /// Size class index, or `None` for a dedicated page span.
    pub class: Option<u8>,
    /// For spans: number of pages.
    pub span_pages: u32,
    /// Payload words actually requested.
    pub words: u32,
    /// Source line that performed the allocation (0 = unattributed), for
    /// snapshot retained-word attribution.
    pub site: u32,
}

/// State of the malloc baseline allocator.
#[derive(Debug, Default)]
pub struct MallocState {
    free_lists: Vec<Vec<Addr>>,
    live: HashMap<u64, MallocObj>,
}

impl MallocState {
    /// Empty allocator state.
    pub fn new() -> MallocState {
        MallocState { free_lists: vec![Vec::new(); SIZE_CLASSES.len()], live: HashMap::new() }
    }

    /// Rebuilds malloc state from a snapshot (restore path). Free-list
    /// entries are placeholder slots on the reserved page 0 that only
    /// reproduce per-class depths; a restored heap is for validation and
    /// inspection, and its free lists are depth-faithful, not
    /// address-faithful (snapshots record depths only).
    pub(crate) fn from_snapshot(
        free_lists: Vec<Vec<Addr>>,
        live: HashMap<u64, MallocObj>,
    ) -> MallocState {
        debug_assert_eq!(free_lists.len(), SIZE_CLASSES.len());
        MallocState { free_lists, live }
    }

    /// Live allocation metadata for the auditor.
    pub fn live_objects(&self) -> impl Iterator<Item = (Addr, &MallocObj)> + '_ {
        self.live.iter().map(|(&a, o)| (Addr::from_raw(a), o))
    }

    /// Number of live allocations.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// Total free slots across all size-class free lists — the timeline's
    /// external-fragmentation gauge for the malloc baseline (slots carved
    /// or freed but not currently serving an allocation).
    pub fn free_list_depth(&self) -> usize {
        self.free_lists.iter().map(Vec::len).sum()
    }

    /// Free slots per size class, parallel to [`SIZE_CLASSES`] — the
    /// snapshot's fragmentation breakdown.
    pub fn free_list_depths(&self) -> Vec<u32> {
        self.free_lists.iter().map(|l| l.len() as u32).collect()
    }
}

impl Heap {
    /// `malloc`-style allocation of `count` elements of `ty` into the
    /// traditional region's heap.
    ///
    /// # Errors
    ///
    /// Returns [`RtError::OutOfMemory`] if the page budget is exhausted.
    pub fn m_alloc(&mut self, ty: TypeId, count: u32) -> Result<Addr, RtError> {
        debug_assert!(count >= 1);
        self.fault_alloc_tick()?;
        let words = self.types.get(ty).size_words() * count as usize;
        let mut cycles = self.costs.malloc_alloc;
        let addr = match size_class(words) {
            Some(class) => {
                if self.malloc.free_lists[class].is_empty() {
                    // Carve a fresh page into objects of this class.
                    cycles += self.costs.malloc_slow_extra;
                    let stride = SIZE_CLASSES[class];
                    let (page, recycled) = self
                        .store
                        .acquire2(PageOwner::Region(TRADITIONAL))
                        .map_err(|e| self.fault_stamp_oom(e))?;
                    let per_page = WORDS_PER_PAGE / stride;
                    for i in (0..per_page).rev() {
                        self.malloc.free_lists[class]
                            .push(Addr::from_parts(page, (i * stride) as u32));
                    }
                    cycles +=
                        if recycled { self.costs.page_recycle } else { self.costs.page_fetch };
                }
                let addr = self.malloc.free_lists[class].pop().expect("list refilled");
                // Recycled slots may hold stale data.
                for w in 0..SIZE_CLASSES[class] {
                    self.store.write(addr.offset(w), 0);
                }
                self.malloc.live.insert(
                    addr.raw(),
                    MallocObj {
                        ty,
                        count,
                        class: Some(class as u8),
                        span_pages: 0,
                        words: words as u32,
                        site: self.trace_site,
                    },
                );
                addr
            }
            None => {
                let span = words.div_ceil(WORDS_PER_PAGE);
                cycles += self.costs.malloc_slow_extra + span as u64 * self.costs.page_fetch;
                let first = self
                    .store
                    .acquire_span(PageOwner::Region(TRADITIONAL), span)
                    .map_err(|e| self.fault_stamp_oom(e))?;
                let addr = Addr::from_parts(first, 0);
                self.malloc.live.insert(
                    addr.raw(),
                    MallocObj {
                        ty,
                        count,
                        class: None,
                        span_pages: span as u32,
                        words: words as u32,
                        site: self.trace_site,
                    },
                );
                addr
            }
        };
        self.stats.alloc_cycles += cycles;
        self.clock.charge(cycles);
        self.stats.malloc_calls += 1;
        self.stats.objects_allocated += 1;
        self.stats.words_allocated += words as u64;
        self.stats.add_live(words as u64);
        if self.trace_on(crate::trace::mask::ALLOC) {
            // malloc objects belong to the traditional region.
            let ev = crate::trace::Event::Alloc {
                region: TRADITIONAL.0,
                site: self.trace_site,
                words: words as u32,
            };
            self.trace_emit(ev);
        }
        if self.span_on() {
            self.span_note_alloc(TRADITIONAL.0, words as u32);
        }
        self.sample_tick();
        Ok(addr)
    }

    /// `free` of a malloc'd object.
    ///
    /// # Errors
    ///
    /// Returns [`RtError::InvalidFree`] if `addr` is not a live malloc
    /// allocation (double free, or a pointer from another allocator).
    pub fn m_free(&mut self, addr: Addr) -> Result<(), RtError> {
        let obj = self.malloc.live.remove(&addr.raw()).ok_or(RtError::InvalidFree { addr })?;
        match obj.class {
            Some(class) => self.malloc.free_lists[class as usize].push(addr),
            None => {
                for p in 0..obj.span_pages {
                    self.store.release(addr.page() + p);
                }
            }
        }
        self.clock.charge(self.costs.malloc_free);
        self.stats.free_calls += 1;
        self.stats.sub_live(obj.words as u64);
        self.sample_tick();
        Ok(())
    }

    /// Live malloc allocation count (test helper).
    pub fn m_live_count(&self) -> usize {
        self.malloc.live_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::TypeLayout;

    fn setup() -> (Heap, TypeId, TypeId) {
        let mut h = Heap::with_defaults();
        let small = h.register_type(TypeLayout::data("small", 3));
        let big = h.register_type(TypeLayout::data("big", 2000));
        (h, small, big)
    }

    #[test]
    fn size_class_selection() {
        assert_eq!(size_class(1), Some(0));
        assert_eq!(size_class(3), Some(2));
        assert_eq!(size_class(4), Some(2));
        assert_eq!(size_class(5), Some(3));
        assert_eq!(size_class(WORDS_PER_PAGE), Some(10));
        assert_eq!(size_class(WORDS_PER_PAGE + 1), None);
    }

    #[test]
    fn malloc_objects_are_traditional() {
        let (mut h, small, _) = setup();
        let a = h.m_alloc(small, 1).unwrap();
        assert_eq!(h.region_of(a), Ok(TRADITIONAL));
    }

    #[test]
    fn free_list_recycles_slots() {
        let (mut h, small, _) = setup();
        let a = h.m_alloc(small, 1).unwrap();
        h.write_int(a, 0, 7).unwrap();
        h.m_free(a).unwrap();
        let b = h.m_alloc(small, 1).unwrap();
        assert_eq!(a, b, "same class reuses the freed slot (LIFO)");
        assert_eq!(h.read_word(b, 0).unwrap(), 0, "recycled memory is zeroed");
    }

    #[test]
    fn double_free_detected() {
        let (mut h, small, _) = setup();
        let a = h.m_alloc(small, 1).unwrap();
        h.m_free(a).unwrap();
        assert_eq!(h.m_free(a), Err(RtError::InvalidFree { addr: a }));
    }

    #[test]
    fn large_objects_use_page_spans() {
        let (mut h, _, big) = setup();
        let a = h.m_alloc(big, 1).unwrap();
        assert_eq!(a.word(), 0);
        let pages_before = h.store.page_count();
        h.m_free(a).unwrap();
        // Freed span pages are recycled by later allocations.
        let b = h.m_alloc(big, 1).unwrap();
        // No net page growth beyond at most the span again.
        assert!(h.store.page_count() <= pages_before + 2);
        assert!(!b.is_null());
    }

    #[test]
    fn live_gauge_tracks_malloc_free() {
        let (mut h, small, _) = setup();
        let a = h.m_alloc(small, 4).unwrap();
        assert_eq!(h.stats.live_words, 12);
        h.m_free(a).unwrap();
        assert_eq!(h.stats.live_words, 0);
        assert_eq!(h.m_live_count(), 0);
    }

    #[test]
    fn free_list_depth_tracks_carving_and_frees() {
        let (mut h, small, _) = setup();
        assert_eq!(h.malloc.free_list_depth(), 0);
        let a = h.m_alloc(small, 1).unwrap();
        // Size class 4 carves a page into 256 slots and hands one out.
        assert_eq!(h.malloc.free_list_depth(), 255);
        h.m_free(a).unwrap();
        assert_eq!(h.malloc.free_list_depth(), 256);
    }

    #[test]
    fn distinct_objects_do_not_alias() {
        let (mut h, small, _) = setup();
        let a = h.m_alloc(small, 1).unwrap();
        let b = h.m_alloc(small, 1).unwrap();
        assert_ne!(a, b);
        h.write_int(a, 2, 1).unwrap();
        h.write_int(b, 0, 2).unwrap();
        assert_eq!(h.read_word(a, 2).unwrap(), 1);
    }
}
