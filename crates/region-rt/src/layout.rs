//! Object type layouts.
//!
//! The RC runtime records type information at allocation time so that
//! deleting a region can scan its objects and remove the references they
//! hold into other regions (paper §3.3.2, "using type information recorded
//! when the objects were allocated"). A [`TypeLayout`] describes, for each
//! word of an object, whether it is plain data or a pointer and — for
//! pointers — which qualifier it carries, because only *unannotated*
//! pointers participate in reference counting.

/// Identifier of a registered object type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TypeId(pub u32);

/// The qualifier carried by a pointer field (paper §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PtrKind {
    /// No annotation: assignments maintain region reference counts
    /// (Figure 3(a)).
    #[default]
    Counted,
    /// `sameregion`: null or in the same region as the containing object.
    SameRegion,
    /// `parentptr`: null or points upwards in the region hierarchy.
    ParentPtr,
    /// `traditional`: null or points into the traditional region.
    Traditional,
}

impl PtrKind {
    /// Whether assignments through this kind of pointer update reference
    /// counts. Only unannotated pointers do; the three annotations replace
    /// the count update with a cheaper check.
    pub fn is_counted(self) -> bool {
        matches!(self, PtrKind::Counted)
    }
}

/// One word of an object layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotKind {
    /// Plain (non-pointer) data.
    Data,
    /// A pointer to a heap object, with its qualifier.
    Ptr(PtrKind),
    /// A region handle (`region` in RC). Region metadata lives outside the
    /// region heap, so handles never contribute to reference counts; they
    /// are tracked so the auditor and the GC can treat them precisely.
    RegionHandle,
}

impl SlotKind {
    /// Whether this slot can hold a heap address.
    pub fn is_ptr(self) -> bool {
        matches!(self, SlotKind::Ptr(_))
    }
}

/// Layout of one object type: a name plus the kind of every word.
///
/// # Examples
///
/// ```
/// use region_rt::layout::{TypeLayout, SlotKind, PtrKind};
/// // struct rlist { struct rlist *sameregion next; int v; }
/// let rlist = TypeLayout::new(
///     "rlist",
///     vec![SlotKind::Ptr(PtrKind::SameRegion), SlotKind::Data],
/// );
/// assert_eq!(rlist.size_words(), 2);
/// assert!(!rlist.has_counted_ptrs());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeLayout {
    name: String,
    slots: Vec<SlotKind>,
}

impl TypeLayout {
    /// Creates a layout from a slot list.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is empty: zero-sized heap objects are not
    /// representable (every allocation needs at least one word).
    pub fn new(name: impl Into<String>, slots: Vec<SlotKind>) -> TypeLayout {
        assert!(!slots.is_empty(), "object types must have at least one word");
        TypeLayout { name: name.into(), slots }
    }

    /// A layout of `n` plain data words (no pointers).
    pub fn data(name: impl Into<String>, n: usize) -> TypeLayout {
        TypeLayout::new(name, vec![SlotKind::Data; n.max(1)])
    }

    /// The type's name (for diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Object size in words.
    pub fn size_words(&self) -> usize {
        self.slots.len()
    }

    /// The kind of slot at word offset `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn slot(&self, i: usize) -> SlotKind {
        self.slots[i]
    }

    /// All slots in order.
    pub fn slots(&self) -> &[SlotKind] {
        &self.slots
    }

    /// Whether any slot is a counted (unannotated) pointer. Objects without
    /// counted pointers go to the `pointerfree` allocator, whose pages need
    /// not be scanned when their region is deleted (paper §3.3.1/§3.3.2).
    pub fn has_counted_ptrs(&self) -> bool {
        self.slots
            .iter()
            .any(|s| matches!(s, SlotKind::Ptr(PtrKind::Counted)))
    }

    /// Word offsets of counted pointer slots (the ones the delete-time scan
    /// must visit).
    pub fn counted_ptr_offsets(&self) -> impl Iterator<Item = usize> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s, SlotKind::Ptr(PtrKind::Counted)))
            .map(|(i, _)| i)
    }
}

/// Registry of object types known to a heap.
#[derive(Debug, Default, Clone)]
pub struct TypeTable {
    types: Vec<TypeLayout>,
}

impl TypeTable {
    /// Creates an empty table.
    pub fn new() -> TypeTable {
        TypeTable::default()
    }

    /// Registers a layout and returns its id.
    pub fn register(&mut self, layout: TypeLayout) -> TypeId {
        let id = TypeId(self.types.len() as u32);
        self.types.push(layout);
        id
    }

    /// Looks up a layout.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this table.
    pub fn get(&self, id: TypeId) -> &TypeLayout {
        &self.types[id.0 as usize]
    }

    /// Number of registered types.
    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// Whether no types are registered.
    pub fn is_empty(&self) -> bool {
        self.types.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pointerfree_classification() {
        let t = TypeLayout::new(
            "mixed",
            vec![
                SlotKind::Data,
                SlotKind::Ptr(PtrKind::SameRegion),
                SlotKind::Ptr(PtrKind::Traditional),
                SlotKind::Ptr(PtrKind::ParentPtr),
            ],
        );
        // Annotated pointers do not force the normal allocator.
        assert!(!t.has_counted_ptrs());

        let t2 = TypeLayout::new(
            "counted",
            vec![SlotKind::Data, SlotKind::Ptr(PtrKind::Counted)],
        );
        assert!(t2.has_counted_ptrs());
        assert_eq!(t2.counted_ptr_offsets().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn table_round_trip() {
        let mut tab = TypeTable::new();
        let a = tab.register(TypeLayout::data("a", 3));
        let b = tab.register(TypeLayout::data("b", 5));
        assert_ne!(a, b);
        assert_eq!(tab.get(a).size_words(), 3);
        assert_eq!(tab.get(b).name(), "b");
        assert_eq!(tab.len(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one word")]
    fn empty_layout_rejected() {
        let _ = TypeLayout::new("zst", vec![]);
    }

    #[test]
    fn data_layout_minimum_one_word() {
        assert_eq!(TypeLayout::data("d", 0).size_words(), 1);
    }
}
