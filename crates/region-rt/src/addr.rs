//! Word-granularity simulated addresses.
//!
//! The RC runtime (paper §3.3.1) allocates memory to regions in blocks that
//! are a multiple of the page size (8 KB) and aligned on a page boundary,
//! and keeps a map from pages to regions so that `regionof` is a shift, a
//! mask and a table lookup. We reproduce that addressing scheme over a
//! simulated heap: an [`Addr`] names one 8-byte word as `(page, word)` where
//! `word < 1024`.
//!
//! Address 0 is the null pointer; page 0 is reserved so that no live object
//! ever has address 0.

/// Number of 8-byte words in one heap page (8 KB / 8 = 1024).
pub const WORDS_PER_PAGE: usize = 1024;

/// Size of one heap page in bytes (paper: "currently 8KB").
pub const PAGE_BYTES: usize = WORDS_PER_PAGE * 8;

/// log2 of [`WORDS_PER_PAGE`], used to split an address into page and word.
pub const PAGE_SHIFT: u32 = 10;

/// A simulated heap address: an index of a single 8-byte word.
///
/// `Addr::NULL` (the zero address) is the null pointer. All other addresses
/// decompose into a page index and a word offset within that page; the page
/// index keys the page→owner map that makes `regionof` O(1), exactly as in
/// the paper's implementation.
///
/// # Examples
///
/// ```
/// use region_rt::addr::Addr;
/// let a = Addr::from_parts(3, 17);
/// assert_eq!(a.page(), 3);
/// assert_eq!(a.word(), 17);
/// assert!(!a.is_null());
/// assert!(Addr::NULL.is_null());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

impl Addr {
    /// The null pointer.
    pub const NULL: Addr = Addr(0);

    /// Builds an address from a page index and a word offset.
    ///
    /// # Panics
    ///
    /// Panics if `word >= WORDS_PER_PAGE`.
    #[inline]
    pub fn from_parts(page: u32, word: u32) -> Addr {
        assert!((word as usize) < WORDS_PER_PAGE, "word offset out of page");
        Addr(((page as u64) << PAGE_SHIFT) | word as u64)
    }

    /// The page index this address falls in.
    #[inline]
    pub fn page(self) -> u32 {
        (self.0 >> PAGE_SHIFT) as u32
    }

    /// The word offset within the page.
    #[inline]
    pub fn word(self) -> u32 {
        (self.0 & ((WORDS_PER_PAGE as u64) - 1)) as u32
    }

    /// Whether this is the null pointer.
    #[inline]
    pub fn is_null(self) -> bool {
        self.0 == 0
    }

    /// The address `self + words`, which may cross into a following page
    /// (large objects span contiguous pages).
    #[inline]
    pub fn offset(self, words: usize) -> Addr {
        Addr(self.0 + words as u64)
    }

    /// Raw word-index representation (what gets stored in heap slots).
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Reconstructs an address from its raw representation.
    #[inline]
    pub fn from_raw(raw: u64) -> Addr {
        Addr(raw)
    }
}

impl std::fmt::Display for Addr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_null() {
            write!(f, "null")
        } else {
            write!(f, "{}:{}", self.page(), self.word())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_is_page_zero() {
        assert_eq!(Addr::NULL.page(), 0);
        assert_eq!(Addr::NULL.word(), 0);
        assert!(Addr::NULL.is_null());
    }

    #[test]
    fn round_trip_parts() {
        for (p, w) in [(0u32, 1u32), (1, 0), (7, 1023), (1 << 20, 512)] {
            let a = Addr::from_parts(p, w);
            assert_eq!(a.page(), p);
            assert_eq!(a.word(), w);
        }
    }

    #[test]
    fn offset_crosses_pages() {
        let a = Addr::from_parts(2, 1020);
        let b = a.offset(10);
        assert_eq!(b.page(), 3);
        assert_eq!(b.word(), 6);
    }

    #[test]
    #[should_panic(expected = "word offset out of page")]
    fn from_parts_rejects_large_word() {
        let _ = Addr::from_parts(0, WORDS_PER_PAGE as u32);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Addr::NULL.to_string(), "null");
        assert_eq!(Addr::from_parts(4, 2).to_string(), "4:2");
    }
}
