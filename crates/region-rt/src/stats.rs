//! Operation counters.
//!
//! Everything the paper's evaluation section reports is derived from counts
//! of dynamic events: pointer assignments by category (Figure 9), reference
//! count work (Table 2), allocation volume (Table 1), and check executions
//! (Figure 8). [`Stats`] is the single accumulation point; the interpreter
//! and the runtime both write to it.

use crate::cost::Cycles;
use crate::json::Json;

/// Category of a dynamic heap pointer assignment, for Figure 9's breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AssignCategory {
    /// Statically verified annotated assignment: no runtime work.
    Safe,
    /// Annotated assignment that executed a runtime check.
    Checked,
    /// Unannotated assignment that did reference-count work.
    Counted,
}

/// Dynamic event counters for one execution.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Stats {
    /// Heap pointer assignments that needed no runtime work (statically
    /// safe annotated stores).
    pub assigns_safe: u64,
    /// Heap pointer assignments that ran an annotation check.
    pub assigns_checked: u64,
    /// Heap pointer assignments that did reference-count work.
    pub assigns_counted: u64,
    /// Pointer assignments to local variables (not heap stores; reported
    /// separately because Figure 9 excludes them).
    pub assigns_local: u64,
    /// Heap pointer assignments executed with all dynamic work disabled
    /// (the "nc" and "norc" configurations); kept out of Figure 9's
    /// categories, which describe the checked configurations.
    pub assigns_raw: u64,
    /// Reference-count updates that actually changed a count (both
    /// `regionof`s differed).
    pub rc_updates_full: u64,
    /// Reference-count updates that took the early exit.
    pub rc_updates_same: u64,
    /// `sameregion` checks executed.
    pub checks_sameregion: u64,
    /// `traditional` checks executed.
    pub checks_traditional: u64,
    /// `parentptr` checks executed.
    pub checks_parentptr: u64,
    /// Objects allocated (all allocators).
    pub objects_allocated: u64,
    /// Words allocated (all allocators), for Table 1's "mem alloc".
    pub words_allocated: u64,
    /// Peak live words, for Table 1's "max use".
    pub peak_live_words: u64,
    /// Currently live words (maintained by alloc/free/delete).
    pub live_words: u64,
    /// Regions created.
    pub regions_created: u64,
    /// Regions deleted.
    pub regions_deleted: u64,
    /// `deleteregion` calls deferred because references remained (only
    /// under [`crate::heap::DeletePolicy::Deferred`]).
    pub regions_deferred: u64,
    /// Full renumberings forced by interval exhaustion (gap-based
    /// numbering only).
    pub renumber_fallbacks: u64,
    /// Words visited by the delete-time unscan.
    pub unscan_words: u64,
    /// Locals pinned around `deletes` calls.
    pub local_pins: u64,
    /// malloc calls.
    pub malloc_calls: u64,
    /// free calls.
    pub free_calls: u64,
    /// GC collections run.
    pub gc_collections: u64,
    /// Words examined by GC marking.
    pub gc_marked_words: u64,
    /// Objects reclaimed by GC sweeps.
    pub gc_swept_objects: u64,
    /// Virtual time spent purely on reference counting (count updates +
    /// local pinning), for Table 2's overhead column.
    pub rc_cycles: Cycles,
    /// Virtual time spent on annotation checks.
    pub check_cycles: Cycles,
    /// Virtual time spent on the delete-time unscan (Table 2's "region
    /// unscan" column).
    pub unscan_cycles: Cycles,
    /// Virtual time spent in the allocators.
    pub alloc_cycles: Cycles,
    /// Virtual time spent in GC.
    pub gc_cycles: Cycles,
    /// Times [`Stats::sub_live`] was asked to remove more words than the
    /// gauge held (a double-free or accounting bug; panics under
    /// `debug_assertions`, and the auditor reports it either way).
    pub live_underflows: u64,
    /// Faults injected by armed fault planes (see [`crate::fault`]);
    /// page-plane injections are folded in at harvest.
    pub faults_injected: u64,
    /// Timeline samples discarded by decimation (see
    /// [`crate::timeline::Timeline::samples_dropped`]): nonzero means the
    /// exported timeline lost resolution, though window sums stay exact.
    pub samples_dropped: u64,
    /// Tasks spawned (`spawn` statements executed). A program point, not
    /// a scheduler decision, so the count is identical under every
    /// scheduler mode.
    pub sched_spawns: u64,
    /// `join` points executed with at least one outstanding child. Also
    /// schedule-invariant: joins happen where the program says, however
    /// the tasks were interleaved.
    pub sched_joins: u64,
}

impl Stats {
    /// Fresh zeroed counters.
    pub fn new() -> Stats {
        Stats::default()
    }

    /// Records a heap pointer assignment of the given category.
    #[inline]
    pub fn record_assign(&mut self, cat: AssignCategory) {
        match cat {
            AssignCategory::Safe => self.assigns_safe += 1,
            AssignCategory::Checked => self.assigns_checked += 1,
            AssignCategory::Counted => self.assigns_counted += 1,
        }
    }

    /// Total heap pointer assignments (Figure 9's denominator).
    pub fn heap_assigns(&self) -> u64 {
        self.assigns_safe + self.assigns_checked + self.assigns_counted
    }

    /// Fraction of heap assignments in a category, in percent (0 if no
    /// assignments happened).
    pub fn assign_pct(&self, cat: AssignCategory) -> f64 {
        let total = self.heap_assigns();
        if total == 0 {
            return 0.0;
        }
        let n = match cat {
            AssignCategory::Safe => self.assigns_safe,
            AssignCategory::Checked => self.assigns_checked,
            AssignCategory::Counted => self.assigns_counted,
        };
        100.0 * n as f64 / total as f64
    }

    /// Adjusts the live-word gauge and the peak.
    #[inline]
    pub fn add_live(&mut self, words: u64) {
        self.live_words += words;
        if self.live_words > self.peak_live_words {
            self.peak_live_words = self.live_words;
        }
    }

    /// Removes from the live-word gauge.
    ///
    /// Removing more than the gauge holds is an accounting bug (a double
    /// free, or an allocator reporting words it never added): this panics
    /// under `debug_assertions`; in release builds it clamps to zero but
    /// records the event in [`Stats::live_underflows`], which
    /// [`summary`](Stats::summary) flags and the heap auditor surfaces as
    /// an error instead of letting the gauge silently under-report
    /// forever.
    #[inline]
    pub fn sub_live(&mut self, words: u64) {
        match self.live_words.checked_sub(words) {
            Some(left) => self.live_words = left,
            None => {
                debug_assert!(
                    false,
                    "live-word gauge underflow: sub_live({words}) with only {} live",
                    self.live_words
                );
                self.live_underflows += 1;
                self.live_words = 0;
            }
        }
    }

    /// Exact fieldwise roll-up of two counter sets, used when per-shard
    /// heaps report into one global `Stats` (see [`crate::shard`]).
    ///
    /// Every field is summed, so `merge` is commutative and associative
    /// and the shard join order cannot change the global report. Two
    /// gauges deserve a note: `live_words` sums to the true global gauge
    /// (shards partition the live heap), while `peak_live_words` sums the
    /// *per-shard* peaks — an upper bound on the true concurrent peak,
    /// since shards need not peak at the same instant.
    ///
    /// The exhaustive struct literal (no `..`) makes adding a `Stats`
    /// field without deciding its merge a compile error.
    #[must_use]
    pub fn merge(&self, other: &Stats) -> Stats {
        Stats {
            assigns_safe: self.assigns_safe + other.assigns_safe,
            assigns_checked: self.assigns_checked + other.assigns_checked,
            assigns_counted: self.assigns_counted + other.assigns_counted,
            assigns_local: self.assigns_local + other.assigns_local,
            assigns_raw: self.assigns_raw + other.assigns_raw,
            rc_updates_full: self.rc_updates_full + other.rc_updates_full,
            rc_updates_same: self.rc_updates_same + other.rc_updates_same,
            checks_sameregion: self.checks_sameregion + other.checks_sameregion,
            checks_traditional: self.checks_traditional + other.checks_traditional,
            checks_parentptr: self.checks_parentptr + other.checks_parentptr,
            objects_allocated: self.objects_allocated + other.objects_allocated,
            words_allocated: self.words_allocated + other.words_allocated,
            peak_live_words: self.peak_live_words + other.peak_live_words,
            live_words: self.live_words + other.live_words,
            regions_created: self.regions_created + other.regions_created,
            regions_deleted: self.regions_deleted + other.regions_deleted,
            regions_deferred: self.regions_deferred + other.regions_deferred,
            renumber_fallbacks: self.renumber_fallbacks + other.renumber_fallbacks,
            unscan_words: self.unscan_words + other.unscan_words,
            local_pins: self.local_pins + other.local_pins,
            malloc_calls: self.malloc_calls + other.malloc_calls,
            free_calls: self.free_calls + other.free_calls,
            gc_collections: self.gc_collections + other.gc_collections,
            gc_marked_words: self.gc_marked_words + other.gc_marked_words,
            gc_swept_objects: self.gc_swept_objects + other.gc_swept_objects,
            rc_cycles: self.rc_cycles + other.rc_cycles,
            check_cycles: self.check_cycles + other.check_cycles,
            unscan_cycles: self.unscan_cycles + other.unscan_cycles,
            alloc_cycles: self.alloc_cycles + other.alloc_cycles,
            gc_cycles: self.gc_cycles + other.gc_cycles,
            live_underflows: self.live_underflows + other.live_underflows,
            faults_injected: self.faults_injected + other.faults_injected,
            samples_dropped: self.samples_dropped + other.samples_dropped,
            sched_spawns: self.sched_spawns + other.sched_spawns,
            sched_joins: self.sched_joins + other.sched_joins,
        }
    }

    /// The counters that are invariant between a sequential (inline) run
    /// of a `spawn`/`join` program and the shard-merged parallel run of
    /// the same program, rendered as a canonical JSON object.
    ///
    /// Excluded, with reasons:
    /// - `peak_live_words` / `live_words`: per-shard peaks sum to an
    ///   upper bound, and end-of-run residency is attributed per shard;
    /// - `regions_created` / `regions_deleted` / `malloc_calls` /
    ///   `free_calls` / `objects_allocated` / `words_allocated` /
    ///   `unscan_words` / `alloc_cycles`: each task materialises its
    ///   transferred region as a fresh facet (one descriptor allocation
    ///   and one region create/delete pair per handoff);
    /// - `renumber_fallbacks` and every `*_cycles` total: hierarchy
    ///   renumbering visits only the owning shard's regions, so virtual
    ///   time diverges from the single-heap schedule;
    /// - `gc_collections` / `gc_marked_words` / `gc_swept_objects`:
    ///   per-shard heaps cross the collection threshold at different
    ///   points than one shared heap would;
    /// - `samples_dropped` / `faults_injected` / `live_underflows`:
    ///   per-heap instrumentation, not program behaviour.
    ///
    /// The exhaustive destructuring (no `..`) forces every future field
    /// to be classified as invariant or excluded.
    pub fn parallel_invariant_key(&self) -> Json {
        let Stats {
            assigns_safe,
            assigns_checked,
            assigns_counted,
            assigns_local,
            assigns_raw,
            rc_updates_full,
            rc_updates_same,
            checks_sameregion,
            checks_traditional,
            checks_parentptr,
            objects_allocated: _,
            words_allocated: _,
            peak_live_words: _,
            live_words: _,
            regions_created: _,
            regions_deleted: _,
            regions_deferred,
            renumber_fallbacks: _,
            unscan_words: _,
            local_pins,
            malloc_calls: _,
            free_calls: _,
            gc_collections: _,
            gc_marked_words: _,
            gc_swept_objects: _,
            rc_cycles: _,
            check_cycles: _,
            unscan_cycles: _,
            alloc_cycles: _,
            gc_cycles: _,
            live_underflows: _,
            faults_injected: _,
            samples_dropped: _,
            sched_spawns,
            sched_joins,
        } = self;
        Json::obj(vec![
            ("assigns_safe", Json::U(*assigns_safe)),
            ("assigns_checked", Json::U(*assigns_checked)),
            ("assigns_counted", Json::U(*assigns_counted)),
            ("assigns_local", Json::U(*assigns_local)),
            ("assigns_raw", Json::U(*assigns_raw)),
            ("rc_updates_full", Json::U(*rc_updates_full)),
            ("rc_updates_same", Json::U(*rc_updates_same)),
            ("checks_sameregion", Json::U(*checks_sameregion)),
            ("checks_traditional", Json::U(*checks_traditional)),
            ("checks_parentptr", Json::U(*checks_parentptr)),
            ("regions_deferred", Json::U(*regions_deferred)),
            ("local_pins", Json::U(*local_pins)),
            ("sched_spawns", Json::U(*sched_spawns)),
            ("sched_joins", Json::U(*sched_joins)),
        ])
    }

    /// A one-screen human-readable dump of the counters, skipping groups
    /// that are all zero. Also available through `{}` formatting.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "allocation : {} objects, {} words ({} peak live, {} live now)\n",
            self.objects_allocated, self.words_allocated, self.peak_live_words, self.live_words
        ));
        out.push_str(&format!(
            "regions    : {} created, {} deleted",
            self.regions_created, self.regions_deleted
        ));
        if self.regions_deferred > 0 || self.renumber_fallbacks > 0 {
            out.push_str(&format!(
                " ({} deferred, {} renumber fallbacks)",
                self.regions_deferred, self.renumber_fallbacks
            ));
        }
        out.push('\n');
        if self.heap_assigns() + self.assigns_local + self.assigns_raw > 0 {
            out.push_str(&format!(
                "assigns    : {} safe / {} checked / {} counted heap stores ({} local, {} raw)\n",
                self.assigns_safe,
                self.assigns_checked,
                self.assigns_counted,
                self.assigns_local,
                self.assigns_raw
            ));
        }
        if self.rc_updates_full + self.rc_updates_same + self.local_pins > 0 {
            out.push_str(&format!(
                "refcounts  : {} full + {} early-exit updates, {} local pins ({} cycles)\n",
                self.rc_updates_full, self.rc_updates_same, self.local_pins, self.rc_cycles
            ));
        }
        let checks = self.checks_sameregion + self.checks_traditional + self.checks_parentptr;
        if checks > 0 {
            out.push_str(&format!(
                "checks     : {} sameregion / {} parentptr / {} traditional ({} cycles)\n",
                self.checks_sameregion,
                self.checks_parentptr,
                self.checks_traditional,
                self.check_cycles
            ));
        }
        if self.unscan_words > 0 {
            out.push_str(&format!(
                "unscan     : {} words at delete ({} cycles)\n",
                self.unscan_words, self.unscan_cycles
            ));
        }
        if self.malloc_calls + self.free_calls > 0 {
            out.push_str(&format!(
                "malloc     : {} allocs, {} frees\n",
                self.malloc_calls, self.free_calls
            ));
        }
        if self.gc_collections > 0 {
            out.push_str(&format!(
                "gc         : {} collections, {} words marked, {} objects swept ({} cycles)\n",
                self.gc_collections, self.gc_marked_words, self.gc_swept_objects, self.gc_cycles
            ));
        }
        out.push_str(&format!("alloc time : {} cycles\n", self.alloc_cycles));
        if self.faults_injected > 0 {
            out.push_str(&format!("faults     : {} injected\n", self.faults_injected));
        }
        if self.samples_dropped > 0 {
            out.push_str(&format!(
                "timeline   : {} samples dropped by decimation\n",
                self.samples_dropped
            ));
        }
        if self.sched_spawns + self.sched_joins > 0 {
            out.push_str(&format!(
                "tasks      : {} spawned, {} join points\n",
                self.sched_spawns, self.sched_joins
            ));
        }
        if self.live_underflows > 0 {
            out.push_str(&format!(
                "WARNING    : {} live-gauge underflows (double free or allocator accounting bug)\n",
                self.live_underflows
            ));
        }
        out
    }

    /// Every counter as one flat JSON object, in declaration order. This
    /// is the machine-readable twin of [`summary`](Stats::summary): the
    /// JSONL profiles, `--profile` output, and the bench trajectory all
    /// read counters through it, so they cannot drift from each other.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("assigns_safe", Json::U(self.assigns_safe)),
            ("assigns_checked", Json::U(self.assigns_checked)),
            ("assigns_counted", Json::U(self.assigns_counted)),
            ("assigns_local", Json::U(self.assigns_local)),
            ("assigns_raw", Json::U(self.assigns_raw)),
            ("rc_updates_full", Json::U(self.rc_updates_full)),
            ("rc_updates_same", Json::U(self.rc_updates_same)),
            ("checks_sameregion", Json::U(self.checks_sameregion)),
            ("checks_traditional", Json::U(self.checks_traditional)),
            ("checks_parentptr", Json::U(self.checks_parentptr)),
            ("objects_allocated", Json::U(self.objects_allocated)),
            ("words_allocated", Json::U(self.words_allocated)),
            ("peak_live_words", Json::U(self.peak_live_words)),
            ("live_words", Json::U(self.live_words)),
            ("regions_created", Json::U(self.regions_created)),
            ("regions_deleted", Json::U(self.regions_deleted)),
            ("regions_deferred", Json::U(self.regions_deferred)),
            ("renumber_fallbacks", Json::U(self.renumber_fallbacks)),
            ("unscan_words", Json::U(self.unscan_words)),
            ("local_pins", Json::U(self.local_pins)),
            ("malloc_calls", Json::U(self.malloc_calls)),
            ("free_calls", Json::U(self.free_calls)),
            ("gc_collections", Json::U(self.gc_collections)),
            ("gc_marked_words", Json::U(self.gc_marked_words)),
            ("gc_swept_objects", Json::U(self.gc_swept_objects)),
            ("rc_cycles", Json::U(self.rc_cycles)),
            ("check_cycles", Json::U(self.check_cycles)),
            ("unscan_cycles", Json::U(self.unscan_cycles)),
            ("alloc_cycles", Json::U(self.alloc_cycles)),
            ("gc_cycles", Json::U(self.gc_cycles)),
            ("live_underflows", Json::U(self.live_underflows)),
            ("faults_injected", Json::U(self.faults_injected)),
            ("samples_dropped", Json::U(self.samples_dropped)),
            ("sched_spawns", Json::U(self.sched_spawns)),
            ("sched_joins", Json::U(self.sched_joins)),
        ])
    }

    /// Parses a counter object produced by [`to_json`](Stats::to_json).
    ///
    /// The exhaustive literal (no `..`) keeps this in lockstep with the
    /// struct: adding a field without extending the parser is a compile
    /// error, and the round-trip test catches a missing serializer key.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or mistyped key. Externally
    /// supplied reports go through this (e.g. `bench-diff` inputs), so
    /// malformed data must surface as an error, never a panic.
    pub fn from_json(doc: &Json) -> Result<Stats, String> {
        let field = |key: &str| -> Result<u64, String> {
            doc.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("stats: missing or non-integer field {key:?}"))
        };
        Ok(Stats {
            assigns_safe: field("assigns_safe")?,
            assigns_checked: field("assigns_checked")?,
            assigns_counted: field("assigns_counted")?,
            assigns_local: field("assigns_local")?,
            assigns_raw: field("assigns_raw")?,
            rc_updates_full: field("rc_updates_full")?,
            rc_updates_same: field("rc_updates_same")?,
            checks_sameregion: field("checks_sameregion")?,
            checks_traditional: field("checks_traditional")?,
            checks_parentptr: field("checks_parentptr")?,
            objects_allocated: field("objects_allocated")?,
            words_allocated: field("words_allocated")?,
            peak_live_words: field("peak_live_words")?,
            live_words: field("live_words")?,
            regions_created: field("regions_created")?,
            regions_deleted: field("regions_deleted")?,
            regions_deferred: field("regions_deferred")?,
            renumber_fallbacks: field("renumber_fallbacks")?,
            unscan_words: field("unscan_words")?,
            local_pins: field("local_pins")?,
            malloc_calls: field("malloc_calls")?,
            free_calls: field("free_calls")?,
            gc_collections: field("gc_collections")?,
            gc_marked_words: field("gc_marked_words")?,
            gc_swept_objects: field("gc_swept_objects")?,
            rc_cycles: field("rc_cycles")?,
            check_cycles: field("check_cycles")?,
            unscan_cycles: field("unscan_cycles")?,
            alloc_cycles: field("alloc_cycles")?,
            gc_cycles: field("gc_cycles")?,
            live_underflows: field("live_underflows")?,
            faults_injected: field("faults_injected")?,
            samples_dropped: field("samples_dropped")?,
            sched_spawns: field("sched_spawns")?,
            sched_joins: field("sched_joins")?,
        })
    }
}

impl std::fmt::Display for Stats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.summary())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assign_percentages_sum_to_100() {
        let mut s = Stats::new();
        for _ in 0..5 {
            s.record_assign(AssignCategory::Safe);
        }
        for _ in 0..3 {
            s.record_assign(AssignCategory::Checked);
        }
        for _ in 0..2 {
            s.record_assign(AssignCategory::Counted);
        }
        let total = s.assign_pct(AssignCategory::Safe)
            + s.assign_pct(AssignCategory::Checked)
            + s.assign_pct(AssignCategory::Counted);
        assert!((total - 100.0).abs() < 1e-9);
        assert_eq!(s.heap_assigns(), 10);
    }

    #[test]
    fn empty_stats_report_zero_pct() {
        let s = Stats::new();
        assert_eq!(s.assign_pct(AssignCategory::Safe), 0.0);
    }

    #[test]
    fn live_gauge_tracks_peak() {
        let mut s = Stats::new();
        s.add_live(10);
        s.add_live(5);
        s.sub_live(12);
        s.add_live(4);
        assert_eq!(s.peak_live_words, 15);
        assert_eq!(s.live_words, 7);
    }

    #[test]
    fn summary_mentions_every_nonzero_group() {
        let mut s = Stats::new();
        s.objects_allocated = 7;
        s.words_allocated = 20;
        s.rc_updates_full = 3;
        s.checks_sameregion = 4;
        s.gc_collections = 1;
        let text = format!("{s}");
        for needle in ["7 objects", "3 full", "4 sameregion", "1 collections"] {
            assert!(text.contains(needle), "summary missing {needle:?}: {text}");
        }
        // Zero groups are skipped.
        assert!(!text.contains("unscan"));
        assert!(!text.contains("malloc"));
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "live-word gauge underflow")]
    fn sub_live_underflow_panics_in_debug() {
        let mut s = Stats::new();
        s.add_live(3);
        s.sub_live(10);
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn sub_live_underflow_clamps_and_counts_in_release() {
        let mut s = Stats::new();
        s.add_live(3);
        s.sub_live(10);
        assert_eq!(s.live_words, 0);
        assert_eq!(s.live_underflows, 1);
    }

    /// Every field set to a distinct nonzero value; the exhaustive literal
    /// (no `..`) makes adding a `Stats` field without updating the
    /// serialization tests a compile error.
    fn fully_populated() -> Stats {
        Stats {
            assigns_safe: 1,
            assigns_checked: 2,
            assigns_counted: 3,
            assigns_local: 4,
            assigns_raw: 5,
            rc_updates_full: 6,
            rc_updates_same: 7,
            checks_sameregion: 8,
            checks_traditional: 9,
            checks_parentptr: 10,
            objects_allocated: 11,
            words_allocated: 12,
            peak_live_words: 13,
            live_words: 14,
            regions_created: 15,
            regions_deleted: 16,
            regions_deferred: 17,
            renumber_fallbacks: 18,
            unscan_words: 19,
            local_pins: 20,
            malloc_calls: 21,
            free_calls: 22,
            gc_collections: 23,
            gc_marked_words: 24,
            gc_swept_objects: 25,
            rc_cycles: 26,
            check_cycles: 27,
            unscan_cycles: 28,
            alloc_cycles: 29,
            gc_cycles: 30,
            live_underflows: 31,
            faults_injected: 32,
            samples_dropped: 33,
            sched_spawns: 34,
            sched_joins: 35,
        }
    }

    /// A second distinct population for merge tests: field `i` holds
    /// `(i + 1) * k`, built through the JSON round trip so it stays
    /// exhaustive without a second literal.
    fn shifted(k: u64) -> Stats {
        let doc: Vec<(String, Json)> = fully_populated()
            .to_json()
            .as_object()
            .unwrap_or_default()
            .iter()
            .enumerate()
            .map(|(i, (key, _))| (key.clone(), Json::U((i as u64 + 1) * k)))
            .collect();
        Stats::from_json(&Json::O(doc)).expect("round trip")
    }

    #[test]
    fn merge_sums_every_field_exactly() {
        let a = fully_populated();
        let m = a.merge(&a);
        let fields = m.to_json().as_object().unwrap_or_default().to_vec();
        let orig = a.to_json().as_object().unwrap_or_default().to_vec();
        assert_eq!(fields.len(), orig.len());
        for ((k, v), (ok, ov)) in fields.iter().zip(orig.iter()) {
            assert_eq!(k, ok);
            let (Json::U(v), Json::U(ov)) = (v, ov) else { panic!("non-integer counter") };
            assert_eq!(*v, 2 * ov, "{k} not summed");
        }
    }

    #[test]
    fn merge_is_commutative_and_associative_with_zero_identity() {
        let (a, b, c) = (fully_populated(), shifted(3), shifted(7));
        assert_eq!(a.merge(&b), b.merge(&a));
        assert_eq!(a.merge(&b).merge(&c), a.merge(&b.merge(&c)));
        assert_eq!(a.merge(&Stats::new()), a);
    }

    #[test]
    fn parallel_invariant_key_is_a_strict_projection() {
        let key = fully_populated().parallel_invariant_key();
        let fields = key.as_object().unwrap_or_default();
        assert!(!fields.is_empty());
        assert!(fields.len() < 35, "key must exclude shard-dependent gauges");
        let full = fully_populated().to_json();
        for (k, v) in fields {
            assert_eq!(full.get(k), Some(v), "{k} drifted from the counter it projects");
        }
        // The headline exclusions stay excluded.
        for gone in ["peak_live_words", "gc_collections", "rc_cycles", "malloc_calls"] {
            assert!(key.get(gone).is_none(), "{gone} must not be in the invariant key");
        }
    }

    #[test]
    fn to_json_covers_every_counter() {
        let s = fully_populated();
        let json = s.to_json();
        // An unexpected shape fails the assertion instead of panicking.
        let fields = json.as_object().unwrap_or_default();
        assert_eq!(fields.len(), 35, "one JSON key per Stats field (got {json:?})");
        for (key, val) in fields {
            assert!(matches!(val, Json::U(v) if *v >= 1 && *v <= 35), "{key} lost its value");
        }
        // Distinct values stay distinct: nothing is aliased or dropped.
        let mut vals: Vec<u64> =
            fields.iter().map(|(_, v)| if let Json::U(u) = v { *u } else { 0 }).collect();
        vals.sort_unstable();
        assert_eq!(vals, (1..=35).collect::<Vec<u64>>());
    }

    #[test]
    fn json_round_trip_preserves_every_counter() {
        let s = fully_populated();
        let text = s.to_json().render();
        let parsed = crate::json::Json::parse(&text).expect("to_json output parses");
        assert_eq!(Stats::from_json(&parsed), Ok(s));
    }

    #[test]
    fn from_json_rejects_malformed_input_without_panicking() {
        // Wrong shape entirely.
        let err = Stats::from_json(&Json::Null).unwrap_err();
        assert!(err.contains("assigns_safe"), "{err}");
        // One key missing.
        let mut fields = fully_populated().to_json().as_object().unwrap_or_default().to_vec();
        assert_eq!(fields.len(), 35);
        fields.retain(|(k, _)| k != "gc_cycles");
        let err = Stats::from_json(&Json::O(fields.clone())).unwrap_err();
        assert!(err.contains("gc_cycles"), "{err}");
        // One key mistyped.
        fields.push(("gc_cycles".to_string(), Json::s("thirty")));
        let err = Stats::from_json(&Json::O(fields)).unwrap_err();
        assert!(err.contains("gc_cycles"), "{err}");
    }

    #[test]
    fn summary_covers_every_counter_group_when_nonzero() {
        let text = format!("{}", fully_populated());
        for needle in [
            "11 objects",
            "12 words",
            "13 peak",
            "14 live",
            "15 created",
            "16 deleted",
            "17 deferred",
            "18 renumber",
            "1 safe",
            "2 checked",
            "3 counted",
            "4 local",
            "5 raw",
            "6 full",
            "7 early-exit",
            "20 local pins",
            "8 sameregion",
            "10 parentptr",
            "9 traditional",
            "19 words at delete",
            "21 allocs",
            "22 frees",
            "23 collections",
            "24 words marked",
            "25 objects swept",
            "26 cycles",
            "27 cycles",
            "28 cycles",
            "29 cycles",
            "30 cycles",
            "31 live-gauge underflows",
            "32 injected",
            "33 samples dropped",
            "34 spawned",
            "35 join points",
        ] {
            assert!(text.contains(needle), "summary missing {needle:?}:\n{text}");
        }
    }
}
