//! Structured event tracing for the region runtime.
//!
//! Every dynamic event the paper's evaluation is built on — region
//! creation/deletion, allocation, reference-count updates, annotation
//! checks, collections, audits — can be captured as a typed [`Event`].
//! The [`Stats`](crate::stats::Stats) counters answer *how many*; the
//! trace answers *which region*, *which allocation site*, and *which
//! check site*, which is what lifetime and locality tuning needs.
//!
//! Design constraints (see `docs/OBSERVABILITY.md`):
//!
//! - **Zero dependencies.** The ring buffer, the profile fold, and the
//!   JSONL encoder are all in-tree.
//! - **Pay only when enabled.** Emission sites test one word
//!   ([`Heap::trace_on`] is `self.trace_mask & bit != 0`); with the mask
//!   zero — the default — the entire subsystem costs a predictable branch
//!   per event site. Building `region-rt` with `--no-default-features`
//!   removes even that branch (the `telemetry` cargo feature).
//! - **Bounded memory, exact totals.** Raw events live in a bounded ring:
//!   old events are overwritten, never reallocated. But every event is
//!   folded into the [`Profile`](crate::profile::Profile) *at emission
//!   time*, so folded totals equal the `Stats` counters exactly no matter
//!   how small the ring is.
//!
//! Per-site attribution: events carry a `site`, the 1-based source line
//! of the RC program statement that caused them (0 = unattributed, e.g.
//! events from runtime-internal activity). The interpreter publishes the
//! current line via [`Heap::set_trace_site`] before entering the runtime.

use crate::cost::Cycles;
use crate::fault::FaultPlane;
use crate::heap::Heap;
use crate::json::Json;
use crate::layout::PtrKind;
use crate::profile::Profile;

/// Bit flags selecting which event kinds a [`Tracer`] records. Combine
/// with `|`; [`mask::ALL`] enables everything.
pub mod mask {
    /// Top-level region creation (`newregion`).
    pub const REGION_CREATED: u32 = 1 << 0;
    /// Subregion creation (`newsubregion`).
    pub const SUBREGION_CREATED: u32 = 1 << 1;
    /// Region reclamation (successful `deleteregion`, or deferred
    /// reclamation when a doomed region's count reaches zero).
    pub const REGION_DELETED: u32 = 1 << 2;
    /// Object allocation, from any allocator (ralloc / malloc / GC).
    pub const ALLOC: u32 = 1 << 3;
    /// A Figure 3(a) reference-count update (full or early-exit).
    pub const RC_UPDATE: u32 = 1 << 4;
    /// A Figure 3(b) annotation check execution.
    pub const CHECK_RUN: u32 = 1 << 5;
    /// A mark–sweep collection of the GC baseline.
    pub const GC_COLLECTION: u32 = 1 << 6;
    /// A run of the heap auditor.
    pub const AUDIT_RUN: u32 = 1 << 7;
    /// An injected fault (see [`crate::fault`]).
    pub const FAULT: u32 = 1 << 8;
    /// All event kinds.
    pub const ALL: u32 = (1 << 9) - 1;
}

/// One dynamic event. Region fields are raw [`RegionId`]
/// (crate::region::RegionId) indices; `site` fields are 1-based source
/// lines (0 = unattributed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A top-level region was created (child of the traditional region).
    RegionCreated {
        /// The new region.
        region: u32,
        /// Virtual time of creation.
        at: Cycles,
    },
    /// A subregion was created.
    SubregionCreated {
        /// The new region.
        region: u32,
        /// Its parent.
        parent: u32,
        /// Virtual time of creation.
        at: Cycles,
    },
    /// A region was reclaimed.
    RegionDeleted {
        /// The reclaimed region.
        region: u32,
        /// Words of object storage freed by the reclamation.
        live_words: u64,
        /// Virtual time elapsed between creation and reclamation.
        lifetime_cycles: Cycles,
    },
    /// An object (or array) was allocated.
    Alloc {
        /// Owning region (the traditional region for malloc/GC objects).
        region: u32,
        /// Source line of the allocation (0 = unattributed).
        site: u32,
        /// Size in words.
        words: u32,
    },
    /// A reference-count update ran.
    RcUpdate {
        /// Region of the object containing the updated slot.
        from: u32,
        /// Region of the newly stored pointer ([`NO_REGION`] for null).
        to: u32,
        /// Whether the counts actually changed (`false` = the Figure 3(a)
        /// early exit: old and new value were co-regional).
        full: bool,
        /// Source line of the store (0 = unattributed).
        site: u32,
    },
    /// An annotation check ran.
    CheckRun {
        /// Which annotation was checked.
        kind: PtrKind,
        /// Source line of the store (0 = unattributed).
        site: u32,
        /// Whether the check passed (a failed check aborts the program).
        passed: bool,
    },
    /// A mark–sweep collection ran.
    GcCollection {
        /// Words examined by marking.
        marked_words: u64,
        /// Objects reclaimed by the sweep.
        swept_objects: u64,
    },
    /// The heap auditor ran.
    AuditRun {
        /// Whether the reference-count invariant held.
        ok: bool,
    },
    /// A fault plane injected a failure.
    Fault {
        /// The plane that fired.
        plane: FaultPlane,
        /// 1-based operation ordinal on that plane.
        op: u64,
        /// Virtual time of injection.
        at: Cycles,
    },
}

/// Sentinel for "no region" in [`Event::RcUpdate::to`] (a null store).
pub const NO_REGION: u32 = u32::MAX;

impl Event {
    /// The [`mask`] bit for this event's kind.
    pub fn mask_bit(&self) -> u32 {
        match self {
            Event::RegionCreated { .. } => mask::REGION_CREATED,
            Event::SubregionCreated { .. } => mask::SUBREGION_CREATED,
            Event::RegionDeleted { .. } => mask::REGION_DELETED,
            Event::Alloc { .. } => mask::ALLOC,
            Event::RcUpdate { .. } => mask::RC_UPDATE,
            Event::CheckRun { .. } => mask::CHECK_RUN,
            Event::GcCollection { .. } => mask::GC_COLLECTION,
            Event::AuditRun { .. } => mask::AUDIT_RUN,
            Event::Fault { .. } => mask::FAULT,
        }
    }

    /// Encodes the event as one JSON object (one JSONL line).
    pub fn to_json(&self) -> Json {
        match *self {
            Event::RegionCreated { region, at } => Json::obj(vec![
                ("ev", Json::s("region_created")),
                ("region", Json::U(region as u64)),
                ("at", Json::U(at)),
            ]),
            Event::SubregionCreated { region, parent, at } => Json::obj(vec![
                ("ev", Json::s("subregion_created")),
                ("region", Json::U(region as u64)),
                ("parent", Json::U(parent as u64)),
                ("at", Json::U(at)),
            ]),
            Event::RegionDeleted { region, live_words, lifetime_cycles } => Json::obj(vec![
                ("ev", Json::s("region_deleted")),
                ("region", Json::U(region as u64)),
                ("live_words", Json::U(live_words)),
                ("lifetime_cycles", Json::U(lifetime_cycles)),
            ]),
            Event::Alloc { region, site, words } => Json::obj(vec![
                ("ev", Json::s("alloc")),
                ("region", Json::U(region as u64)),
                ("site", Json::U(site as u64)),
                ("words", Json::U(words as u64)),
            ]),
            Event::RcUpdate { from, to, full, site } => Json::obj(vec![
                ("ev", Json::s("rc_update")),
                ("from", Json::U(from as u64)),
                ("to", if to == NO_REGION { Json::Null } else { Json::U(to as u64) }),
                ("full", Json::Bool(full)),
                ("site", Json::U(site as u64)),
            ]),
            Event::CheckRun { kind, site, passed } => Json::obj(vec![
                ("ev", Json::s("check")),
                ("kind", Json::s(check_kind_name(kind))),
                ("site", Json::U(site as u64)),
                ("passed", Json::Bool(passed)),
            ]),
            Event::GcCollection { marked_words, swept_objects } => Json::obj(vec![
                ("ev", Json::s("gc")),
                ("marked_words", Json::U(marked_words)),
                ("swept_objects", Json::U(swept_objects)),
            ]),
            Event::AuditRun { ok } => {
                Json::obj(vec![("ev", Json::s("audit")), ("ok", Json::Bool(ok))])
            }
            Event::Fault { plane, op, at } => Json::obj(vec![
                ("ev", Json::s("fault")),
                ("plane", Json::s(plane.name())),
                ("op", Json::U(op)),
                ("at", Json::U(at)),
            ]),
        }
    }
}

/// Stable lower-case name of a check kind for export.
pub fn check_kind_name(kind: PtrKind) -> &'static str {
    match kind {
        PtrKind::SameRegion => "sameregion",
        PtrKind::ParentPtr => "parentptr",
        PtrKind::Traditional => "traditional",
        PtrKind::Counted => "counted",
    }
}

/// The event recorder: a bounded ring of recent raw events plus an
/// always-exact online [`Profile`] fold. `Clone` exists so a task's
/// tracer can be preserved un-merged in a
/// [`TaskReport`](crate::shard::TaskReport) while the original is folded
/// into the global profile.
#[derive(Debug, Clone)]
pub struct Tracer {
    mask: u32,
    capacity: usize,
    ring: Vec<Event>,
    /// Next write position once the ring is full.
    head: usize,
    recorded: u64,
    dropped: u64,
    profile: Profile,
}

/// Default ring capacity (events) when none is given.
pub const DEFAULT_RING_CAPACITY: usize = 64 * 1024;

impl Tracer {
    /// A tracer recording the event kinds in `mask` into a ring of at
    /// most `capacity` raw events (clamped to at least 16).
    pub fn new(mask: u32, capacity: usize) -> Tracer {
        let capacity = capacity.max(16);
        Tracer {
            mask,
            capacity,
            ring: Vec::new(),
            head: 0,
            recorded: 0,
            dropped: 0,
            profile: Profile::new(),
        }
    }

    /// The enabled-kinds mask.
    pub fn mask(&self) -> u32 {
        self.mask
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records one event: folds it into the profile and appends it to the
    /// ring (overwriting the oldest event if full).
    pub fn record(&mut self, ev: Event) {
        self.profile.fold(&ev);
        self.recorded += 1;
        if self.ring.len() < self.capacity {
            self.ring.push(ev);
        } else {
            self.ring[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Total events recorded (including those since overwritten).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Raw events still in the ring, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        let (older, newer) = self.ring.split_at(self.head);
        newer.iter().chain(older.iter())
    }

    /// Number of raw events currently retained.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// The online profile fold over *all* recorded events.
    pub fn profile(&self) -> &Profile {
        &self.profile
    }

    /// Folds another tracer's exact profile into this one's, renumbering
    /// the other side's regions past `region_offset` first (shard →
    /// global roll-up, see [`crate::shard`]). The raw-event rings are
    /// not merged — recent events stay attributed to their own tracer —
    /// but the recorded/dropped totals sum so coverage accounting stays
    /// exact.
    pub fn absorb_profile(&mut self, other: &Tracer, region_offset: u32) {
        let mut p = other.profile.clone();
        p.offset_regions(region_offset);
        self.profile = self.profile.merge(&p);
        self.recorded += other.recorded;
        self.dropped += other.dropped;
    }

    /// Renders the retained raw events as JSONL, one event per line. When
    /// `tag` is non-empty each line carries a `"run"` field, letting
    /// several runs share one file.
    pub fn events_jsonl(&self, tag: &str) -> String {
        let mut out = String::new();
        for ev in self.events() {
            let mut j = ev.to_json();
            if !tag.is_empty() {
                if let Json::O(fields) = &mut j {
                    fields.insert(0, ("run".to_string(), Json::s(tag)));
                }
            }
            out.push_str(&j.render());
            out.push('\n');
        }
        out
    }
}

impl Heap {
    /// Whether events of the kinds in `bit` are currently being recorded.
    /// This is the one branch the disabled path pays.
    #[inline(always)]
    pub(crate) fn trace_on(&self, bit: u32) -> bool {
        #[cfg(feature = "telemetry")]
        {
            self.trace_mask & bit != 0
        }
        #[cfg(not(feature = "telemetry"))]
        {
            let _ = bit;
            false
        }
    }

    /// Hands an event to the tracer. Callers guard with [`Heap::trace_on`].
    #[cold]
    pub(crate) fn trace_emit(&mut self, ev: Event) {
        if let Some(t) = self.tracer.as_mut() {
            t.record(ev);
        }
    }

    /// Starts recording the event kinds in `mask` into a fresh tracer
    /// with the given ring capacity. Replaces any existing tracer.
    pub fn enable_tracing(&mut self, mask: u32, capacity: usize) {
        self.tracer = Some(Box::new(Tracer::new(mask, capacity)));
        self.trace_mask = mask;
    }

    /// Stops recording and detaches the tracer, returning it for report
    /// building. Returns `None` if tracing was never enabled.
    pub fn take_tracer(&mut self) -> Option<Box<Tracer>> {
        self.trace_mask = 0;
        self.tracer.take()
    }

    /// The attached tracer, if any.
    pub fn tracer(&self) -> Option<&Tracer> {
        self.tracer.as_deref()
    }

    /// Whether any event kind is being recorded.
    #[inline]
    pub fn tracing_enabled(&self) -> bool {
        self.trace_mask != 0
    }

    /// Publishes the current source line (1-based; 0 = unattributed) for
    /// per-site attribution of subsequent alloc/check/rc-update events.
    /// The interpreter calls this before entering runtime operations.
    #[inline(always)]
    pub fn set_trace_site(&mut self, line: u32) {
        self.trace_site = line;
    }

    /// Records an [`Event::AuditRun`]. The auditor itself takes `&self`,
    /// so harnesses report its outcome through this separate call.
    pub fn record_audit_run(&mut self, ok: bool) {
        if self.trace_on(mask::AUDIT_RUN) {
            self.trace_emit(Event::AuditRun { ok });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_bounded_and_keeps_newest() {
        let mut t = Tracer::new(mask::ALL, 16);
        for i in 0..40u32 {
            t.record(Event::Alloc { region: 1, site: i, words: 1 });
        }
        assert_eq!(t.len(), 16);
        assert_eq!(t.recorded(), 40);
        assert_eq!(t.dropped(), 24);
        // Only Alloc events were recorded; anything else would shrink the
        // filtered list and fail the equality below — no panic required.
        let sites: Vec<u32> = t
            .events()
            .filter_map(|e| match e {
                Event::Alloc { site, .. } => Some(*site),
                _ => None,
            })
            .collect();
        assert_eq!(sites, (24..40).collect::<Vec<_>>(), "oldest-first, newest kept");
        // The fold saw every event even though the ring did not keep them.
        assert_eq!(t.profile().totals.allocs, 40);
    }

    #[test]
    fn jsonl_lines_are_tagged_and_one_per_event() {
        let mut t = Tracer::new(mask::ALL, 16);
        t.record(Event::RegionCreated { region: 1, at: 5 });
        t.record(Event::AuditRun { ok: true });
        let jsonl = t.events_jsonl("figure1");
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with(r#"{"run":"figure1","ev":"region_created""#));
        assert!(lines[1].contains(r#""ev":"audit""#));
    }

    #[test]
    fn null_target_serializes_as_null() {
        let ev = Event::RcUpdate { from: 2, to: NO_REGION, full: true, site: 7 };
        assert!(ev.to_json().render().contains(r#""to":null"#));
    }
}
