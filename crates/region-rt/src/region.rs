//! Regions: reference counts and the subregion hierarchy.
//!
//! A region is "composed of a reference count and two allocators" plus the
//! `id` / `nextid` fields that support the `parentptr` runtime check: "a
//! depth-first numbering of the region hierarchy stored in the id and nextid
//! fields of each region" (paper §3.3.1–3.3.2). A region `rn` is an ancestor
//! of `rp` exactly when `rp.id >= rn.id && rp.id < rn.nextid`.
//!
//! The traditional region — "the code, stack, global data and malloc heap" —
//! is region 0, the root of the hierarchy, and can never be deleted.

use crate::alloc::BumpAlloc;

/// Identifier of a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionId(pub u32);

/// The distinguished traditional region.
pub const TRADITIONAL: RegionId = RegionId(0);

impl RegionId {
    /// Whether this is the traditional region.
    pub fn is_traditional(self) -> bool {
        self == TRADITIONAL
    }
}

/// Per-region state.
#[derive(Debug)]
pub struct RegionData {
    /// Whether the region is live (false after `deleteregion`).
    pub alive: bool,
    /// Deferred-deletion mode: `deleteregion` was called while references
    /// remained; reclaim when the count reaches zero.
    pub doomed: bool,
    /// Count of external (unannotated) references into this region, plus
    /// temporary pins for live locals around `deletes` calls.
    pub rc: i64,
    /// How many of `rc` are pins (tracked so the auditor can separate
    /// heap references from local-variable pins).
    pub pins: i64,
    /// Depth-first preorder number (or interval start under the
    /// gap-based scheme).
    pub id: u64,
    /// One past the largest `id` in this region's subtree (interval end
    /// under the gap-based scheme).
    pub nextid: u64,
    /// Gap-based scheme only: start of the unassigned space inside this
    /// region's interval, from which new children are carved.
    pub child_cursor: u64,
    /// Virtual time of creation, for telemetry's region-lifetime
    /// accounting ([`Event::RegionDeleted`](crate::trace::Event)).
    pub born_at: u64,
    /// Parent region (None only for the traditional region).
    pub parent: Option<RegionId>,
    /// Live child regions.
    pub children: Vec<RegionId>,
    /// Allocator for objects containing unannotated pointers.
    pub normal: BumpAlloc,
    /// Allocator for objects containing no unannotated pointers; its pages
    /// are not scanned at deletion.
    pub pointerfree: BumpAlloc,
}

impl RegionData {
    /// A fresh live region.
    pub fn new(parent: Option<RegionId>) -> RegionData {
        RegionData {
            alive: true,
            doomed: false,
            rc: 0,
            pins: 0,
            id: 0,
            nextid: 0,
            child_cursor: 0,
            born_at: 0,
            parent,
            children: Vec::new(),
            normal: BumpAlloc::new(),
            pointerfree: BumpAlloc::new(),
        }
    }
}

/// Recomputes the depth-first numbering of the live hierarchy rooted at
/// [`TRADITIONAL`]. Returns the number of regions visited (the paper's
/// implementation "updates this numbering every time a region is created";
/// the visit count is what the cost model charges).
pub fn renumber(regions: &mut [RegionData]) -> u64 {
    let mut next = 0u64;
    let mut visited = 0u64;
    // Explicit stack: (region index, child cursor).
    let mut stack: Vec<(usize, usize)> = Vec::new();
    debug_assert!(regions[TRADITIONAL.0 as usize].alive);
    regions[TRADITIONAL.0 as usize].id = next;
    next += 1;
    visited += 1;
    stack.push((TRADITIONAL.0 as usize, 0));
    while let Some(&mut (r, ref mut cursor)) = stack.last_mut() {
        if *cursor < regions[r].children.len() {
            let child = regions[r].children[*cursor].0 as usize;
            *cursor += 1;
            debug_assert!(regions[child].alive, "children lists hold live regions only");
            regions[child].id = next;
            next += 1;
            visited += 1;
            stack.push((child, 0));
        } else {
            regions[r].nextid = next;
            stack.pop();
        }
    }
    visited
}

/// Reassigns *gapped* intervals over the live hierarchy: each region gets
/// an interval nested inside its parent's, with the parent's trailing
/// space reserved for future children. This is the fallback of the
/// gap-based numbering scheme (the "more efficient scheme" the paper
/// anticipates replacing eager renumbering with); after it runs, new
/// subregions are assigned in O(1) until some interval is exhausted
/// again. Returns the number of regions visited.
pub fn renumber_gapped(regions: &mut [RegionData]) -> u64 {
    fn assign(regions: &mut [RegionData], node: usize, lo: u64, hi: u64, visited: &mut u64) {
        *visited += 1;
        regions[node].id = lo;
        regions[node].nextid = hi;
        let kids: Vec<usize> = regions[node].children.iter().map(|c| c.0 as usize).collect();
        // Reserve an equal share per existing child plus one spare share
        // for future children.
        let space = hi.saturating_sub(lo + 1);
        let share = space / (kids.len() as u64 + 1).max(1);
        let mut cursor = lo + 1;
        for k in kids {
            let end = cursor + share.max(2);
            assign(regions, k, cursor, end.min(hi), visited);
            cursor = end.min(hi);
        }
        regions[node].child_cursor = cursor;
    }
    let mut visited = 0;
    assign(regions, TRADITIONAL.0 as usize, 0, u64::MAX / 2, &mut visited);
    visited
}

/// The `parentptr` ancestry test from Figure 3(b): is `anc` an ancestor of
/// (or equal to) `desc`, according to the current DFS numbering?
#[inline]
pub fn is_ancestor(regions: &[RegionData], anc: RegionId, desc: RegionId) -> bool {
    let a = &regions[anc.0 as usize];
    let d = &regions[desc.0 as usize];
    d.id >= a.id && d.id < a.nextid
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a forest: indices are RegionIds; `parents[i]` is the parent of
    /// region i (region 0 is the traditional root).
    fn build(parents: &[Option<usize>]) -> Vec<RegionData> {
        let mut v: Vec<RegionData> = parents
            .iter()
            .map(|p| RegionData::new(p.map(|i| RegionId(i as u32))))
            .collect();
        for (i, p) in parents.iter().enumerate() {
            if let Some(p) = p {
                let child = RegionId(i as u32);
                v[*p].children.push(child);
            }
        }
        renumber(&mut v);
        v
    }

    #[test]
    fn numbering_covers_all_live_regions() {
        // 0 -> {1, 2}, 1 -> {3}
        let v = build(&[None, Some(0), Some(0), Some(1)]);
        assert_eq!(v[0].id, 0);
        assert_eq!(v[0].nextid, 4);
        // Preorder: 0, 1, 3, 2.
        assert_eq!(v[1].id, 1);
        assert_eq!(v[3].id, 2);
        assert_eq!(v[2].id, 3);
    }

    #[test]
    fn ancestor_query_matches_structure() {
        let v = build(&[None, Some(0), Some(0), Some(1), Some(3)]);
        let r = |i: u32| RegionId(i);
        // Root is ancestor of everything (this is why parentptr-to-
        // traditional always passes).
        for i in 0..5 {
            assert!(is_ancestor(&v, r(0), r(i)));
        }
        assert!(is_ancestor(&v, r(1), r(3)));
        assert!(is_ancestor(&v, r(1), r(4)));
        assert!(is_ancestor(&v, r(3), r(4)));
        assert!(!is_ancestor(&v, r(2), r(3)));
        assert!(!is_ancestor(&v, r(3), r(1)));
        assert!(!is_ancestor(&v, r(4), r(3)));
        // Reflexive: pointers within one region pass the parentptr check.
        assert!(is_ancestor(&v, r(3), r(3)));
    }

    #[test]
    fn renumber_counts_visits() {
        let mut v = build(&[None, Some(0), Some(1)]);
        assert_eq!(renumber(&mut v), 3);
    }
}
