//! Region emulation over `malloc/free` or the GC.
//!
//! For benchmarks that were already region-based, the paper's "lea" column
//! "uses a simple region-emulation library that uses malloc and free to
//! allocate and free each individual object", and the "GC" column "uses the
//! same code ... except that calls to malloc are replaced by calls to
//! garbage collected allocation and calls to free are removed". This module
//! is that emulation library: it gives the workloads an unchanged region
//! API while routing every allocation to the selected baseline allocator.

use crate::addr::Addr;
use crate::error::RtError;
use crate::heap::Heap;
use crate::layout::TypeId;

/// Identifier of an emulated region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EmuRegionId(pub u32);

/// Which baseline allocator backs the emulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EmuBackend {
    /// `malloc` per object; `deleteregion` frees each object individually.
    MallocFree,
    /// GC allocation per object; `deleteregion` just drops the object list
    /// (memory is reclaimed by collections).
    Gc,
}

/// The region-emulation library.
#[derive(Debug)]
pub struct EmuRegions {
    backend: EmuBackend,
    /// Object lists per emulated region (`None` = deleted).
    regions: Vec<Option<Vec<Addr>>>,
}

impl EmuRegions {
    /// Creates an emulation over the chosen backend.
    pub fn new(backend: EmuBackend) -> EmuRegions {
        EmuRegions { backend, regions: Vec::new() }
    }

    /// The backend in use.
    pub fn backend(&self) -> EmuBackend {
        self.backend
    }

    /// Emulated `newregion` / `newsubregion` (the emulation has no
    /// hierarchy; subregions are independent regions, which matches the
    /// unsafe region libraries the original benchmarks used).
    pub fn new_region(&mut self) -> EmuRegionId {
        let id = EmuRegionId(self.regions.len() as u32);
        self.regions.push(Some(Vec::new()));
        id
    }

    /// Emulated `ralloc` / `rarrayalloc`.
    ///
    /// # Errors
    ///
    /// Returns [`RtError::RegionDead`] if the emulated region was deleted,
    /// or the backend allocator's failure.
    pub fn alloc(
        &mut self,
        heap: &mut Heap,
        r: EmuRegionId,
        ty: TypeId,
        count: u32,
    ) -> Result<Addr, RtError> {
        let addr = match self.backend {
            EmuBackend::MallocFree => heap.m_alloc(ty, count)?,
            EmuBackend::Gc => heap.gc_alloc(ty, count)?,
        };
        let list = self.regions[r.0 as usize]
            .as_mut()
            .ok_or(RtError::RegionDead { region: crate::region::RegionId(r.0) })?;
        list.push(addr);
        Ok(addr)
    }

    /// Emulated `deleteregion`: frees every object individually (malloc
    /// backend) or drops the list (GC backend). Unlike real RC this is
    /// unsafe — no reference count prevents dangling pointers.
    ///
    /// # Errors
    ///
    /// Returns [`RtError::RegionDead`] on double deletion.
    pub fn delete_region(&mut self, heap: &mut Heap, r: EmuRegionId) -> Result<(), RtError> {
        let list = self.regions[r.0 as usize]
            .take()
            .ok_or(RtError::RegionDead { region: crate::region::RegionId(r.0) })?;
        if self.backend == EmuBackend::MallocFree {
            for addr in list {
                heap.m_free(addr)?;
            }
        }
        Ok(())
    }

    /// Objects currently recorded in an emulated region (for GC roots:
    /// the emulation's lists themselves keep objects reachable, matching
    /// the region data structures of the original programs).
    pub fn region_objects(&self, r: EmuRegionId) -> &[Addr] {
        self.regions[r.0 as usize].as_deref().unwrap_or(&[])
    }

    /// Identifiers of the emulated regions that are still live (used by
    /// fault recovery to unwind the emulated region stack).
    pub fn live_regions(&self) -> Vec<EmuRegionId> {
        self.regions
            .iter()
            .enumerate()
            .filter(|(_, r)| r.is_some())
            .map(|(i, _)| EmuRegionId(i as u32))
            .collect()
    }

    /// All live object addresses across emulated regions (GC root set
    /// contribution).
    pub fn all_roots(&self) -> Vec<u64> {
        self.regions
            .iter()
            .flatten()
            .flat_map(|list| list.iter().map(|a| a.raw()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::TypeLayout;

    #[test]
    fn malloc_backend_frees_objects_on_delete() {
        let mut h = Heap::with_defaults();
        let ty = h.register_type(TypeLayout::data("obj", 4));
        let mut emu = EmuRegions::new(EmuBackend::MallocFree);
        let r = emu.new_region();
        for _ in 0..10 {
            emu.alloc(&mut h, r, ty, 1).unwrap();
        }
        assert_eq!(h.m_live_count(), 10);
        emu.delete_region(&mut h, r).unwrap();
        assert_eq!(h.m_live_count(), 0);
        assert_eq!(h.stats.free_calls, 10, "lea emulation frees per object");
    }

    #[test]
    fn gc_backend_leaves_reclamation_to_collections() {
        let mut h = Heap::with_defaults();
        let ty = h.register_type(TypeLayout::data("obj", 4));
        let mut emu = EmuRegions::new(EmuBackend::Gc);
        let r = emu.new_region();
        for _ in 0..10 {
            emu.alloc(&mut h, r, ty, 1).unwrap();
        }
        emu.delete_region(&mut h, r).unwrap();
        assert_eq!(h.stats.free_calls, 0);
        // After the region list is dropped, nothing roots the objects.
        assert_eq!(h.gc_collect(&emu.all_roots()), 10);
    }

    #[test]
    fn double_delete_detected() {
        let mut h = Heap::with_defaults();
        let mut emu = EmuRegions::new(EmuBackend::MallocFree);
        let r = emu.new_region();
        emu.delete_region(&mut h, r).unwrap();
        assert!(emu.delete_region(&mut h, r).is_err());
    }

    #[test]
    fn alloc_into_deleted_emu_region_fails() {
        let mut h = Heap::with_defaults();
        let ty = h.register_type(TypeLayout::data("obj", 4));
        let mut emu = EmuRegions::new(EmuBackend::MallocFree);
        let r = emu.new_region();
        emu.delete_region(&mut h, r).unwrap();
        assert!(emu.alloc(&mut h, r, ty, 1).is_err());
    }

    #[test]
    fn roots_cover_live_regions_only() {
        let mut h = Heap::with_defaults();
        let ty = h.register_type(TypeLayout::data("obj", 4));
        let mut emu = EmuRegions::new(EmuBackend::Gc);
        let r1 = emu.new_region();
        let r2 = emu.new_region();
        emu.alloc(&mut h, r1, ty, 1).unwrap();
        emu.alloc(&mut h, r2, ty, 1).unwrap();
        emu.delete_region(&mut h, r1).unwrap();
        assert_eq!(emu.all_roots().len(), 1);
        assert_eq!(emu.region_objects(r1).len(), 0);
        assert_eq!(emu.region_objects(r2).len(), 1);
    }
}
