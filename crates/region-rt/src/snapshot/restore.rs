//! Snapshot restore: turns a [`HeapSnapshot`] back into a live [`Heap`].
//!
//! A snapshot records *aggregates* — per-region occupancy, the page → owner
//! map with per-page fill, per-`(region, site)` retained words, free-list
//! depths — not individual object addresses. Restore therefore rebuilds a
//! heap that is observationally identical to the captured one rather than
//! bit-identical: it synthesizes an object population whose capture
//! reproduces the source document byte for byte (`restore ∘ snapshot` is an
//! exact fixpoint, enforced at the end of [`Heap::restore`]), whose
//! [`Heap::audit`] passes (reference counts are witnessed by synthesized
//! counted pointers), and whose [`HeapSnapshot::verify_against`] holds.
//!
//! The reconstruction runs in stages:
//!
//! 1. **Validate**: every structural invariant a genuine capture satisfies
//!    (region-id sequence, parent links, page-map/region/site accounting
//!    identities) is checked up front; the first violation returns
//!    [`RtError::SnapshotCorrupt`] naming the offending field.
//! 2. **Split** region 0's site table across its three allocators (its own
//!    bump pages, the malloc heap, the GC heap) so each pool's object and
//!    word totals are met.
//! 3. **Place** malloc and GC objects onto their pools' pages so the
//!    capture-time per-page fold reproduces each page's recorded
//!    `used_words` exactly; region-allocator objects need no placement
//!    because region page occupancy is captured from the allocators' fill
//!    vectors, which restore sets directly from the page map.
//! 4. **Witness** reference counts: for every live region with
//!    `rc − pins > 0`, that many counted-pointer slots in objects of
//!    *other* containers are pointed at the region, so the auditor's
//!    recount agrees with the restored counts.
//! 5. **Assemble** the heap and run the three gates: `verify_against`,
//!    `audit`, and the byte-exact re-snapshot fixpoint.
//!
//! Restored heaps are validation-grade: free lists reproduce per-class
//! depths with placeholder slots on the reserved page 0 (snapshots record
//! depths, not addresses), and object types are synthesized data/holder
//! layouts. Every observable the snapshot records is exact.

use std::collections::HashMap;

use crate::addr::{Addr, WORDS_PER_PAGE};
use crate::alloc::{AllocRecord, BumpAlloc};
use crate::cost::{Clock, CostModel};
use crate::error::RtError;
use crate::gc::{GcObj, GcState};
use crate::heap::{DeletePolicy, Heap, HeapConfig, NumberingScheme};
use crate::layout::{PtrKind, SlotKind, TypeId, TypeLayout, TypeTable};
use crate::malloc::{size_class, MallocObj, MallocState, SIZE_CLASSES};
use crate::page::{PageOwner, PageStore};
use crate::region::{RegionData, RegionId};
use crate::snapshot::{HeapSnapshot, RegionSnapshot, SnapOwner};
use crate::span::{Span, SpanNote, SpanTree};
use crate::trace::NO_REGION;

/// Restore refuses snapshots claiming more committed pages than this
/// (1 Mi pages = 8 GiB of simulated heap): a genuine capture of that size
/// would have required the same memory to produce, so anything beyond it
/// is a corrupt or adversarial document, not a workload.
const MAX_RESTORE_PAGES: usize = 1 << 20;

const PAGE_WORDS: u64 = WORDS_PER_PAGE as u64;

fn corrupt(detail: impl Into<String>) -> RtError {
    RtError::SnapshotCorrupt { detail: detail.into() }
}

/// One `(site → objects, words)` slice of a retained table.
#[derive(Debug, Clone, Copy)]
struct Atom {
    site: u32,
    objects: u64,
    words: u64,
}

/// A synthesized live object. `size` is its payload in words; `counted`
/// marks records whose layout is all counted-pointer slots (reference-count
/// witnesses), everything else gets a pointer-free data layout the auditor
/// never dereferences.
#[derive(Debug, Clone, Copy)]
struct Rec {
    addr: Addr,
    size: u64,
    site: u32,
    counted: bool,
    used_slots: u32,
    placed: bool,
}

// ---------------------------------------------------------------------------
// Stage 1: validation
// ---------------------------------------------------------------------------

/// Everything later stages need, computed while validating.
struct Shape {
    /// Per-page fill, indexed by page number (page 0 unused).
    used: Vec<u32>,
    /// Region-0-owned pages that are *not* in region 0's bump allocator —
    /// the malloc heap's pages, ascending, with their fill targets.
    malloc_pages: Vec<(u32, u32)>,
    /// GC-owned pages, ascending, with fill targets.
    gc_pages: Vec<(u32, u32)>,
    /// Per-region site atoms (region 0's cover all three pools).
    region_atoms: Vec<Vec<Atom>>,
    /// Whether the captured heap had a span tree attached.
    spans_on: bool,
}

fn validate(snap: &HeapSnapshot) -> Result<Shape, RtError> {
    let n = snap.regions.len();
    if n == 0 {
        return Err(corrupt("no regions: the traditional region is mandatory"));
    }
    if n > u32::MAX as usize {
        return Err(corrupt("region count exceeds u32 range"));
    }
    for (i, r) in snap.regions.iter().enumerate() {
        if r.region as usize != i {
            return Err(corrupt(format!(
                "regions[{i}].region is {} (duplicate or shuffled region ids)",
                r.region
            )));
        }
    }
    let r0 = &snap.regions[0];
    if !r0.alive || r0.parent.is_some() || r0.doomed {
        return Err(corrupt(
            "regions[0] must be the live, unparented, undoomed traditional region",
        ));
    }
    for (i, r) in snap.regions.iter().enumerate().skip(1) {
        if r.alive {
            let p = match r.parent {
                Some(p) => p as usize,
                None => {
                    return Err(corrupt(format!("regions[{i}] is live but has no parent")))
                }
            };
            if p >= i {
                return Err(corrupt(format!(
                    "regions[{i}].parent {p} is not an earlier region"
                )));
            }
            if !snap.regions[p].alive {
                return Err(corrupt(format!(
                    "regions[{i}] is live but its parent {p} is dead"
                )));
            }
        } else {
            if r.doomed {
                return Err(corrupt(format!(
                    "regions[{i}] is reclaimed but still doomed (doomed regions stay alive)"
                )));
            }
            if r.parent.is_some() {
                return Err(corrupt(format!("regions[{i}] is reclaimed but keeps a parent")));
            }
            if r.live_words != 0 || r.objects != 0 || !r.pages.is_empty() {
                return Err(corrupt(format!(
                    "regions[{i}] is reclaimed but still holds words, objects, or pages"
                )));
            }
        }
    }
    for (i, r) in snap.regions.iter().enumerate() {
        if r.alive {
            if r.rc - r.pins < 0 {
                return Err(corrupt(format!(
                    "regions[{i}] has negative external count: rc {} − pins {}",
                    r.rc, r.pins
                )));
            }
            if r.live_words < r.objects {
                return Err(corrupt(format!(
                    "regions[{i}] has fewer live words ({}) than objects ({})",
                    r.live_words, r.objects
                )));
            }
        }
    }

    // Page map.
    let pc = snap.pages.len();
    if pc > MAX_RESTORE_PAGES {
        return Err(corrupt(format!(
            "page count {pc} exceeds the restore sanity bound {MAX_RESTORE_PAGES}"
        )));
    }
    let mut used = vec![0u32; pc + 1];
    for (j, p) in snap.pages.iter().enumerate() {
        if p.page as usize != j + 1 {
            return Err(corrupt(format!(
                "pages[{j}].page is {}, want {} (pages must cover 1..=count in order)",
                p.page,
                j + 1
            )));
        }
        if p.used_words as u64 > PAGE_WORDS {
            return Err(corrupt(format!(
                "pages[{j}].used_words {} exceeds the page size",
                p.used_words
            )));
        }
        match p.owner {
            SnapOwner::Free => {
                if p.used_words != 0 {
                    return Err(corrupt(format!("pages[{j}] is free but occupied")));
                }
            }
            SnapOwner::Gc => {}
            SnapOwner::Region(r) => {
                if r as usize >= n || !snap.regions[r as usize].alive {
                    return Err(corrupt(format!(
                        "pages[{j}] owned by invalid or dead region {r}"
                    )));
                }
            }
        }
        used[j + 1] = p.used_words;
    }

    // Free chain: a permutation of the free-owned pages.
    let mut in_chain = vec![false; pc + 1];
    for &f in &snap.free_chain {
        let fu = f as usize;
        if fu == 0 || fu > pc {
            return Err(corrupt(format!("free_chain entry {f} is not a committed page")));
        }
        if snap.pages[fu - 1].owner != SnapOwner::Free {
            return Err(corrupt(format!("free_chain entry {f} is not free-owned")));
        }
        if in_chain[fu] {
            return Err(corrupt(format!("free_chain lists page {f} twice")));
        }
        in_chain[fu] = true;
    }
    let free_owned = snap.pages.iter().filter(|p| p.owner == SnapOwner::Free).count();
    if free_owned != snap.free_chain.len() {
        return Err(corrupt(format!(
            "{} free-owned pages but free_chain of {}",
            free_owned,
            snap.free_chain.len()
        )));
    }

    // Region page lists against the owner map.
    let mut owned_by: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut gc_owned: Vec<u32> = Vec::new();
    for p in &snap.pages {
        match p.owner {
            SnapOwner::Region(r) => owned_by[r as usize].push(p.page),
            SnapOwner::Gc => gc_owned.push(p.page),
            SnapOwner::Free => {}
        }
    }
    for (i, r) in snap.regions.iter().enumerate() {
        if !r.pages.windows(2).all(|w| w[0] < w[1]) {
            return Err(corrupt(format!("regions[{i}].pages is not strictly increasing")));
        }
        let words: u64 = r
            .pages
            .iter()
            .map(|&p| {
                if p as usize == 0 || p as usize > pc {
                    0
                } else {
                    used[p as usize] as u64
                }
            })
            .sum();
        if i > 0 {
            if r.pages != owned_by[i] {
                return Err(corrupt(format!(
                    "regions[{i}].pages disagrees with the page-map ownership"
                )));
            }
        } else {
            // Region 0's list covers only its bump allocators; the rest of
            // its owned pages are the malloc heap's.
            let mut it = owned_by[0].iter().copied().peekable();
            for &p in &r.pages {
                loop {
                    match it.next() {
                        Some(q) if q == p => break,
                        Some(_) => continue,
                        None => {
                            return Err(corrupt(format!(
                                "regions[0].pages lists page {p} the page map does not assign to region 0"
                            )));
                        }
                    }
                }
            }
        }
        if words != r.live_words {
            return Err(corrupt(format!(
                "regions[{i}] page fill sums to {words}, live_words says {}",
                r.live_words
            )));
        }
    }
    let malloc_pages: Vec<(u32, u32)> = owned_by[0]
        .iter()
        .filter(|p| !snap.regions[0].pages.contains(p))
        .map(|&p| (p, used[p as usize]))
        .collect();
    let malloc_page_words: u64 = malloc_pages.iter().map(|&(_, u)| u as u64).sum();
    if malloc_page_words != snap.malloc_live_words {
        return Err(corrupt(format!(
            "malloc pages hold {malloc_page_words} words, malloc_live_words says {}",
            snap.malloc_live_words
        )));
    }
    let gc_pages: Vec<(u32, u32)> =
        gc_owned.iter().map(|&p| (p, used[p as usize])).collect();
    let gc_page_words: u64 = gc_pages.iter().map(|&(_, u)| u as u64).sum();
    if gc_page_words != snap.gc_live_words {
        return Err(corrupt(format!(
            "gc pages hold {gc_page_words} words, gc_live_words says {}",
            snap.gc_live_words
        )));
    }

    // Allocator totals.
    if snap.malloc_free_depths.len() != SIZE_CLASSES.len()
        || snap.gc_free_depths.len() != SIZE_CLASSES.len()
    {
        return Err(corrupt("free-depth tables must cover every size class"));
    }
    if snap.malloc_live_words < snap.malloc_live_objects {
        return Err(corrupt("malloc_live_words below malloc_live_objects"));
    }
    if snap.gc_live_words < snap.gc_live_objects {
        return Err(corrupt("gc_live_words below gc_live_objects"));
    }
    if snap.gc_slot_words < snap.gc_live_words {
        return Err(corrupt("gc_slot_words below gc_live_words"));
    }
    if snap.gc_live_objects == 0 && snap.gc_slot_words != 0 {
        return Err(corrupt("gc slot words without gc objects"));
    }
    if snap.stats.live_words != snap.total_live_words() {
        return Err(corrupt(format!(
            "stats.live_words {} breaks the live-word identity (region + malloc + gc = {})",
            snap.stats.live_words,
            snap.total_live_words()
        )));
    }
    if snap.stats.live_underflows > 0 {
        return Err(corrupt(
            "snapshot records live-gauge underflows; such a heap cannot pass audit",
        ));
    }

    // Site table: strictly sorted, every entry on a live region, and the
    // per-region sums matching the region (plus pool) totals.
    let mut region_atoms: Vec<Vec<Atom>> = vec![Vec::new(); n];
    let mut prev: Option<(u32, u32)> = None;
    for (k, s) in snap.sites.iter().enumerate() {
        if let Some(p) = prev {
            if (s.region, s.site) <= p {
                return Err(corrupt(format!("sites[{k}] breaks strict (region, site) order")));
            }
        }
        prev = Some((s.region, s.site));
        if s.region as usize >= n || !snap.regions[s.region as usize].alive {
            return Err(corrupt(format!(
                "sites[{k}] attributes to invalid or dead region {}",
                s.region
            )));
        }
        if s.objects == 0 || s.words < s.objects {
            return Err(corrupt(format!(
                "sites[{k}] has {} objects and {} words (want ≥1 object, ≥1 word each)",
                s.objects, s.words
            )));
        }
        region_atoms[s.region as usize].push(Atom {
            site: s.site,
            objects: s.objects,
            words: s.words,
        });
    }
    for (i, atoms) in region_atoms.iter().enumerate() {
        let o: u64 = atoms.iter().map(|a| a.objects).sum();
        let w: u64 = atoms.iter().map(|a| a.words).sum();
        let (want_o, want_w) = if i == 0 {
            (
                snap.regions[0].objects + snap.malloc_live_objects + snap.gc_live_objects,
                snap.regions[0].live_words + snap.malloc_live_words + snap.gc_live_words,
            )
        } else {
            (snap.regions[i].objects, snap.regions[i].live_words)
        };
        if (o, w) != (want_o, want_w) {
            return Err(corrupt(format!(
                "region {i} site sums ({o} objects, {w} words) disagree with totals ({want_o}, {want_w})"
            )));
        }
    }

    // Span-tree presence: any aggregate or closed_at implies spans were
    // attached; liveness and closure must then agree exactly. An all-zero
    // tree is indistinguishable from no tree and captures identically
    // either way.
    let spans_on = snap.regions.iter().any(|r| {
        r.closed_at.is_some()
            || r.allocs != 0
            || r.alloc_words != 0
            || r.rc_updates != 0
            || r.checks != 0
            || r.checks_failed != 0
            || r.freed_words != 0
            || r.last_touch != 0
    });
    if spans_on {
        for (i, r) in snap.regions.iter().enumerate() {
            if r.alive != r.closed_at.is_none() {
                return Err(corrupt(format!(
                    "regions[{i}]: span closure disagrees with region liveness"
                )));
            }
        }
    }

    Ok(Shape { used, malloc_pages, gc_pages, region_atoms, spans_on })
}

// ---------------------------------------------------------------------------
// Stages 2+3: the region-0 pool split and physical placement
// ---------------------------------------------------------------------------

/// Splits one atom into `objects` record sizes: every record but the last
/// is capped at a page (so it stays eligible as a reference-count witness),
/// and each gets at least one word.
fn atom_sizes(objects: u64, words: u64) -> Vec<u64> {
    let mut out = Vec::with_capacity(objects as usize);
    let mut w = words;
    for i in 0..objects {
        let left = objects - i;
        let s = if left == 1 { w } else { (w - (left - 1)).min(PAGE_WORDS) };
        out.push(s);
        w -= s;
    }
    out
}

/// A chain: a maximal run of physically consecutive pool pages in which
/// every page but the last is full. Inside a chain, records of *any*
/// sizes can be bump-packed back to back across page boundaries: the
/// capture-time fold splits a straddling object exactly at full-page
/// boundaries, so as long as the chain is filled to its capacity the
/// per-page folds land on every page's recorded target. Chains are the
/// unit of placement; a chain must be filled exactly.
struct Chain {
    first_page: u32,
    cap: u64,
    used: u64,
}

fn build_chains(pages: &[(u32, u32)]) -> Vec<Chain> {
    let mut chains = Vec::new();
    let mut i = 0;
    while i < pages.len() {
        let first_page = pages[i].0;
        let mut cap = pages[i].1 as u64;
        let mut j = i;
        while pages[j].1 as u64 == PAGE_WORDS
            && j + 1 < pages.len()
            && pages[j + 1].0 == pages[j].0 + 1
        {
            j += 1;
            cap += pages[j].1 as u64;
        }
        chains.push(Chain { first_page, cap, used: 0 });
        i = j + 1;
    }
    chains
}

impl Chain {
    fn gap(&self) -> u64 {
        self.cap - self.used
    }

    /// Bump-allocates `w` words and returns the record address.
    fn take(&mut self, w: u64) -> Addr {
        let a = Addr::from_parts(
            self.first_page + (self.used / PAGE_WORDS) as u32,
            (self.used % PAGE_WORDS) as u32,
        );
        self.used += w;
        a
    }
}

/// Search budget for [`fill_pools`]: nodes of the backtracking tree. The
/// greedy preference order is the first path tried, so genuine captures
/// resolve in one pass; the budget only bounds pathological documents.
const FILL_NODE_BUDGET: u64 = 500_000;

/// A physical pool's exact `(objects, words)` spending quota for
/// [`fill_pools`].
type PoolBudget = (u64, u64);

/// Cuts records for both physical pools (malloc and GC) from the shared
/// region-0 atom pool so that every chain is filled exactly and each pool
/// spends exactly its `(objects, words)` quota; whatever remains in `atoms`
/// is region 0's own bump population, which needs no placement.
///
/// An atom's last object must carry *all* its remaining words (a later
/// record cannot pick them up), so single-object remainders are rigid,
/// all-or-nothing pieces, while multi-object atoms can cut a record of any
/// size that leaves a word for each other object. That makes the cut an
/// exact-packing problem, solved by depth-first search with greedy
/// preference: close the current chain exactly (rigid piece first, then a
/// flexible cut), else — when the pool can still afford a record for every
/// open chain — the largest rigid piece that fits, then the largest
/// flexible cut, then a minimal one-word cut. Chains are visited smallest
/// first so awkward gaps are closed while the atom pool is still diverse.
fn fill_pools(
    pools: [(&[(u32, u32)], PoolBudget); 2],
    atoms: &mut Vec<(u32, u64, u64)>,
) -> Result<[Vec<Rec>; 2], RtError> {
    struct PoolState {
        o_rem: u64,
        w_rem: u64,
    }
    let mut chains: Vec<(u8, Chain)> = Vec::new();
    for (p, (pages, _)) in pools.iter().enumerate() {
        chains.extend(build_chains(pages).into_iter().map(|c| (p as u8, c)));
    }
    chains.sort_by_key(|(_, c)| c.cap);
    let mut state = [
        PoolState { o_rem: pools[0].1 .0, w_rem: pools[0].1 .1 },
        PoolState { o_rem: pools[1].1 .0, w_rem: pools[1].1 .1 },
    ];

    // One DFS frame per record cut: the candidate list for the chain open
    // at that depth, the next candidate to try, and the applied cut.
    struct Frame {
        ci: usize,
        cands: Vec<(usize, u64)>,
        next: usize,
        applied: Option<(usize, u64, Addr)>,
    }
    let candidates = |chains: &[(u8, Chain)],
                      state: &[PoolState],
                      atoms: &[(u32, u64, u64)],
                      ci: usize|
     -> Vec<(usize, u64)> {
        let (p, chain) = &chains[ci];
        let ps = &state[*p as usize];
        let gap = chain.gap();
        if ps.o_rem == 0 || ps.w_rem < gap {
            return Vec::new();
        }
        // Every later chain of this pool needs at least one record of its
        // own (chains are visited in index order, so all are still open).
        let open_after =
            chains[ci + 1..].iter().filter(|(q, _)| q == p).count() as u64;
        if ps.o_rem < open_after + 1 {
            return Vec::new();
        }
        // Hold back one word for every other record this pool still owes.
        let cap = gap.min(ps.w_rem - (ps.o_rem - 1));
        let mut singles: Vec<(usize, u64)> = atoms
            .iter()
            .enumerate()
            .filter(|(_, a)| a.1 == 1 && a.2 <= cap)
            .map(|(k, a)| (k, a.2))
            .collect();
        singles.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut multis: Vec<(usize, u64)> = atoms
            .iter()
            .enumerate()
            .filter(|(_, a)| a.1 >= 2)
            .map(|(k, a)| (k, cap.min(a.2 - (a.1 - 1))))
            .filter(|&(_, s)| s >= 1)
            .collect();
        multis.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

        let mut out: Vec<(usize, u64)> = Vec::new();
        out.extend(singles.iter().copied().filter(|&(_, s)| s == gap));
        out.extend(
            multis.iter().filter(|&&(_, s)| s >= gap).map(|&(k, _)| (k, gap)),
        );
        if ps.o_rem > open_after + 1 {
            // Non-closing cuts are affordable.
            out.extend(singles.iter().copied().filter(|&(_, s)| s < gap));
            out.extend(multis.iter().copied().filter(|&(_, s)| s < gap));
            // Last resort: burn an object on a minimal cut.
            out.extend(
                multis
                    .iter()
                    .filter(|&&(_, s)| s > 1 && s < gap)
                    .map(|&(k, _)| (k, 1)),
            );
        }
        out
    };

    let mut frames: Vec<Frame> = Vec::new();
    let mut nodes: u64 = 0;
    let first_open = |chains: &[(u8, Chain)]| chains.iter().position(|(_, c)| c.gap() > 0);
    match first_open(&chains) {
        Some(ci) => {
            let cands = candidates(&chains, &state, atoms, ci);
            frames.push(Frame { ci, cands, next: 0, applied: None });
        }
        None => {
            if state.iter().any(|ps| ps.o_rem != 0) {
                return Err(corrupt(
                    "malloc/gc pools own no occupied pages for their live objects",
                ));
            }
        }
    }
    let mut done = frames.is_empty();
    while !done {
        let Some(f) = frames.last_mut() else {
            return Err(corrupt(
                "region-0 site table cannot be cut to fit the malloc/gc page runs",
            ));
        };
        // Undo the previous attempt at this depth before trying the next.
        if let Some((k, s, _)) = f.applied.take() {
            let p = chains[f.ci].0 as usize;
            chains[f.ci].1.used -= s;
            atoms[k].1 += 1;
            atoms[k].2 += s;
            state[p].o_rem += 1;
            state[p].w_rem += s;
        }
        if f.next >= f.cands.len() {
            frames.pop();
            continue;
        }
        let (k, s) = f.cands[f.next];
        f.next += 1;
        let p = chains[f.ci].0 as usize;
        let addr = chains[f.ci].1.take(s);
        f.applied = Some((k, s, addr));
        atoms[k].1 -= 1;
        atoms[k].2 -= s;
        state[p].o_rem -= 1;
        state[p].w_rem -= s;
        nodes += 1;
        if nodes > FILL_NODE_BUDGET {
            return Err(corrupt(
                "malloc/gc object placement search exceeded its budget",
            ));
        }
        match first_open(&chains) {
            Some(ci) => {
                let cands = candidates(&chains, &state, atoms, ci);
                frames.push(Frame { ci, cands, next: 0, applied: None });
            }
            None => {
                if state.iter().all(|ps| ps.o_rem == 0) {
                    done = true;
                }
                // Otherwise fall through: the loop revisits this frame,
                // undoes the cut, and tries the next candidate.
            }
        }
    }

    let mut out: [Vec<Rec>; 2] = [Vec::new(), Vec::new()];
    for f in &frames {
        if let Some((k, s, addr)) = f.applied {
            let site = atoms[k].0;
            out[chains[f.ci].0 as usize].push(Rec {
                addr,
                size: s,
                site,
                counted: false,
                used_slots: 0,
                placed: true,
            });
        }
    }
    atoms.retain(|a| a.1 > 0);
    for recs in &mut out {
        recs.sort_by_key(|r| r.addr.raw());
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Stage 4: reference-count witnesses
// ---------------------------------------------------------------------------

/// Per-region bump cursor for placing witness records on the region's own
/// pages. Synthesized data records are never dereferenced, so the full page
/// is usable as witness capacity regardless of its fill target.
struct RegionCursor {
    page_idx: usize,
    word: u32,
}

fn place_region_rec(rec: &mut Rec, pages: &[u32], cur: &mut RegionCursor) -> bool {
    if rec.size > PAGE_WORDS {
        return false;
    }
    while cur.page_idx < pages.len() {
        if (WORDS_PER_PAGE as u32 - cur.word) as u64 >= rec.size {
            rec.addr = Addr::from_parts(pages[cur.page_idx], cur.word);
            cur.word += rec.size as u32;
            rec.placed = true;
            return true;
        }
        cur.page_idx += 1;
        cur.word = 0;
    }
    false
}

// ---------------------------------------------------------------------------
// The restore entry point
// ---------------------------------------------------------------------------

impl Heap {
    /// Reconstructs a live heap from a snapshot.
    ///
    /// The result is observationally identical to the captured heap: it
    /// passes [`HeapSnapshot::verify_against`] and [`Heap::audit`], and
    /// re-snapshotting it reproduces the source document byte for byte
    /// (all three are enforced before returning). Object addresses and
    /// free-list slots are synthesized — snapshots record aggregates, not
    /// addresses — so the heap is validation-grade: correct for every
    /// observable the snapshot format defines, and allocation-ready for
    /// supervised re-execution.
    ///
    /// # Errors
    ///
    /// Returns [`RtError::SnapshotCorrupt`] naming the first violated
    /// invariant if the document is internally inconsistent, describes an
    /// unsatisfiable object population, or the restored heap fails any of
    /// the three exit gates.
    pub fn restore(snap: &HeapSnapshot) -> Result<Heap, RtError> {
        let shape = validate(snap)?;
        let n = snap.regions.len();

        // Carve region 0's site atoms across its three pools. Malloc and GC
        // need fold-exact physical placement (capture derives their page
        // occupancy from object addresses), so they cut their records from
        // the shared atoms first — the pool needing more surplus words per
        // object picks before the leaner one — and region 0's own bump
        // allocator keeps the remainder, which needs no placement at all
        // (region occupancy is captured from fill vectors).
        let mut shared: Vec<(u32, u64, u64)> = shape.region_atoms[0]
            .iter()
            .map(|a| (a.site, a.objects, a.words))
            .collect();
        let [mut malloc_recs, gc_recs] = fill_pools(
            [
                (&shape.malloc_pages, (snap.malloc_live_objects, snap.malloc_live_words)),
                (&shape.gc_pages, (snap.gc_live_objects, snap.gc_live_words)),
            ],
            &mut shared,
        )?;
        let rem: (u64, u64) = shared.iter().fold((0, 0), |t, a| (t.0 + a.1, t.1 + a.2));
        if rem != (snap.regions[0].objects, snap.regions[0].live_words) {
            return Err(corrupt(
                "region-0 site table cannot be partitioned across its pools",
            ));
        }
        let r0_atoms: Vec<Atom> = shared
            .iter()
            .map(|&(site, objects, words)| Atom { site, objects, words })
            .collect();

        // Region records: sizes from the site atoms; addresses are dummies
        // (region occupancy is captured from fill vectors, and data layouts
        // are never dereferenced) until one is placed as a witness.
        let mut region_recs: Vec<Vec<Rec>> = Vec::with_capacity(n);
        for (i, rs) in snap.regions.iter().enumerate() {
            let atoms = if i == 0 { &r0_atoms } else { &shape.region_atoms[i] };
            let mut recs = Vec::new();
            if !atoms.is_empty() {
                // objects > 0 ⇒ live_words > 0 ⇒ at least one page.
                let dummy = Addr::from_parts(rs.pages[0], 0);
                for a in atoms {
                    for s in atom_sizes(a.objects, a.words) {
                        recs.push(Rec {
                            addr: dummy,
                            size: s,
                            site: a.site,
                            counted: false,
                            used_slots: 0,
                            placed: false,
                        });
                    }
                }
            }
            region_recs.push(recs);
        }

        // Witness every live region's external count with counted-pointer
        // slots in other containers.
        let mut writes: Vec<(Addr, u64)> = Vec::new();
        let mut cursors: Vec<RegionCursor> =
            (0..n).map(|_| RegionCursor { page_idx: 0, word: 0 }).collect();
        for t in 0..n {
            let rt = &snap.regions[t];
            if !rt.alive || rt.rc - rt.pins == 0 {
                continue;
            }
            let mut need = (rt.rc - rt.pins) as u64;
            let target = if t > 0 {
                let &page = rt.pages.first().ok_or_else(|| {
                    corrupt(format!(
                        "regions[{t}] has {} external references but no object to reference",
                        need
                    ))
                })?;
                Addr::from_parts(page, 0)
            } else {
                let page = snap.regions[0]
                    .pages
                    .first()
                    .copied()
                    .or_else(|| shape.malloc_pages.first().map(|&(p, _)| p))
                    .or_else(|| shape.gc_pages.first().map(|&(p, _)| p))
                    .ok_or_else(|| {
                        corrupt(
                            "region 0 has external references but owns no referable page",
                        )
                    })?;
                Addr::from_parts(page, 0)
            };
            // Malloc objects are the natural holders (container = region 0).
            if t > 0 {
                for rec in malloc_recs.iter_mut() {
                    while need > 0 && rec.size <= PAGE_WORDS && (rec.used_slots as u64) < rec.size {
                        rec.counted = true;
                        writes.push((rec.addr.offset(rec.used_slots as usize), target.raw()));
                        rec.used_slots += 1;
                        need -= 1;
                    }
                    if need == 0 {
                        break;
                    }
                }
            }
            // Then region objects of any other live container.
            for s in 0..n {
                if need == 0 {
                    break;
                }
                if s == t || !snap.regions[s].alive {
                    continue;
                }
                let pages = snap.regions[s].pages.clone();
                for rec in region_recs[s].iter_mut() {
                    if need == 0 {
                        break;
                    }
                    if !rec.placed && !place_region_rec(rec, &pages, &mut cursors[s]) {
                        continue;
                    }
                    if rec.size > PAGE_WORDS {
                        continue;
                    }
                    while need > 0 && (rec.used_slots as u64) < rec.size {
                        rec.counted = true;
                        writes.push((rec.addr.offset(rec.used_slots as usize), target.raw()));
                        rec.used_slots += 1;
                        need -= 1;
                    }
                }
            }
            if need > 0 {
                return Err(corrupt(format!(
                    "regions[{t}] claims {} external references but only {} can be witnessed",
                    rt.rc - rt.pins,
                    (rt.rc - rt.pins) as u64 - need
                )));
            }
        }

        // Materialize types: one shared unit data layout (records carry the
        // size in their element count) plus one holder layout per witness
        // size.
        let mut types = TypeTable::new();
        let unit = types.register(TypeLayout::data("snap_data", 1));
        let mut holders: HashMap<u64, TypeId> = HashMap::new();
        let mut ty_of = |types: &mut TypeTable, rec: &Rec| -> (TypeId, u32) {
            if rec.counted {
                let ty = *holders.entry(rec.size).or_insert_with(|| {
                    types.register(TypeLayout::new(
                        format!("snap_holder_{}", rec.size),
                        vec![SlotKind::Ptr(PtrKind::Counted); rec.size as usize],
                    ))
                });
                (ty, 1)
            } else {
                (unit, rec.size as u32)
            }
        };

        let mut malloc_live: HashMap<u64, MallocObj> = HashMap::new();
        for rec in &malloc_recs {
            let (ty, count) = ty_of(&mut types, rec);
            malloc_live.insert(
                rec.addr.raw(),
                MallocObj {
                    ty,
                    count,
                    class: size_class(rec.size as usize).map(|c| c as u8),
                    span_pages: if rec.size > PAGE_WORDS {
                        rec.size.div_ceil(PAGE_WORDS) as u32
                    } else {
                        0
                    },
                    words: rec.size as u32,
                    site: rec.site,
                },
            );
        }
        let gc_pad = snap.gc_slot_words - snap.gc_live_words;
        let mut gc_objects: std::collections::BTreeMap<u64, GcObj> =
            std::collections::BTreeMap::new();
        for (k, rec) in gc_recs.iter().enumerate() {
            let (ty, count) = ty_of(&mut types, rec);
            let pad = if k + 1 == gc_recs.len() { gc_pad } else { 0 };
            let slot = rec.size + pad;
            if slot > u32::MAX as u64 {
                return Err(corrupt("gc slot padding exceeds the u32 slot field"));
            }
            gc_objects.insert(
                rec.addr.raw(),
                GcObj {
                    ty,
                    count,
                    slot_words: slot as u32,
                    words: rec.size as u32,
                    class: size_class(rec.size as usize).map(|c| c as u8),
                    span_pages: if rec.size > PAGE_WORDS {
                        rec.size.div_ceil(PAGE_WORDS) as u32
                    } else {
                        0
                    },
                    marked: false,
                    site: rec.site,
                },
            );
        }

        // Free lists reproduce per-class depths with placeholder slots on
        // the reserved page 0 (snapshots record depths, not addresses).
        let placeholder_lists = |depths: &[u32]| -> Vec<Vec<Addr>> {
            depths
                .iter()
                .map(|&d| {
                    (0..d)
                        .map(|j| Addr::from_parts(0, j % WORDS_PER_PAGE as u32))
                        .collect()
                })
                .collect()
        };

        // Assemble the page store and apply the witness writes.
        let owners: Vec<PageOwner> = snap
            .pages
            .iter()
            .map(|p| match p.owner {
                SnapOwner::Free => PageOwner::Free,
                SnapOwner::Gc => PageOwner::Gc,
                SnapOwner::Region(r) => PageOwner::Region(RegionId(r)),
            })
            .collect();
        let mut store = PageStore::from_snapshot(owners, snap.free_chain.clone(), 0);
        for &(a, v) in &writes {
            store.write(a, v);
        }

        // Region table.
        let mut regions: Vec<RegionData> = Vec::with_capacity(n);
        for (i, rs) in snap.regions.iter().enumerate() {
            let normal = if rs.alive {
                let fill: Vec<u32> =
                    rs.pages.iter().map(|&p| shape.used[p as usize]).collect();
                let objs: Vec<AllocRecord> = region_recs[i]
                    .iter()
                    .map(|rec| {
                        let (ty, count) = ty_of(&mut types, rec);
                        AllocRecord { addr: rec.addr, ty, count, site: rec.site }
                    })
                    .collect();
                BumpAlloc::from_snapshot(rs.pages.clone(), fill, objs, rs.live_words)
            } else {
                BumpAlloc::new()
            };
            regions.push(RegionData {
                alive: rs.alive,
                doomed: rs.doomed,
                rc: rs.rc,
                pins: rs.pins,
                id: rs.dfs_id,
                nextid: rs.dfs_nextid,
                child_cursor: rs.dfs_nextid,
                born_at: rs.born_at,
                parent: rs.parent.map(RegionId),
                children: Vec::new(),
                normal,
                pointerfree: BumpAlloc::new(),
            });
        }
        for i in 1..n {
            let rs = &snap.regions[i];
            if rs.alive {
                if let Some(p) = rs.parent {
                    regions[p as usize].children.push(RegionId(i as u32));
                }
            }
        }

        let any_doomed = snap.regions.iter().any(|r| r.doomed);
        let mut clock = Clock::new();
        clock.charge(snap.at_cycles);

        let mut heap = Heap {
            store,
            regions,
            types,
            rc_enabled: true,
            delete_policy: if any_doomed { DeletePolicy::Deferred } else { DeletePolicy::Abort },
            numbering: NumberingScheme::RenumberOnCreate,
            malloc: MallocState::from_snapshot(
                placeholder_lists(&snap.malloc_free_depths),
                malloc_live,
            ),
            gc: GcState::from_snapshot(
                gc_objects,
                placeholder_lists(&snap.gc_free_depths),
                HeapConfig::default().gc_threshold_words,
            ),
            stats: snap.stats.clone(),
            clock,
            costs: CostModel::paper(),
            trace_mask: 0,
            tracer: None,
            trace_site: 0,
            sample_countdown: 0,
            timeline: None,
            fault_alloc: None,
            fault_rc: None,
            fault_check: None,
            check_counter: None,
            check_site: crate::checkcount::NO_CHECK_SITE,
            check_safe: false,
            span_tree: None,
        };

        if shape.spans_on {
            let spans: Vec<Span> = snap
                .regions
                .iter()
                .map(span_from)
                .collect();
            let notes: Vec<SpanNote> = snap
                .regions
                .iter()
                .filter(|rs| rs.last_touch > 0)
                .map(|rs| SpanNote::Rc {
                    region: rs.region,
                    at: rs.last_touch,
                    site: 0,
                    full: false,
                })
                .collect();
            heap.span_tree = Some(Box::new(SpanTree::from_snapshot(spans, notes)));
        }

        // The three exit gates: a restored heap must verify, audit clean,
        // and re-snapshot byte-identically.
        snap.verify_against(&heap)
            .map_err(|e| corrupt(format!("restored heap failed verification: {e}")))?;
        heap.audit()
            .map_err(|e| corrupt(format!("restored heap failed audit: {e}")))?;
        let again = snap.resnapshot(&heap).render();
        let want = snap.render();
        if again != want {
            let diff = want
                .lines()
                .zip(again.lines())
                .enumerate()
                .filter(|(_, (a, b))| a != b)
                .take(12)
                .map(|(k, (a, b))| format!("line {}: {} != {}", k + 1, a.trim(), b.trim()))
                .collect::<Vec<_>>()
                .join("; ");
            let diff = if diff.is_empty() { "document lengths differ".to_string() } else { diff };
            return Err(corrupt(format!(
                "restored heap re-snapshot diverges from the source document ({diff})"
            )));
        }
        Ok(heap)
    }
}

/// Rebuilds one region's lifecycle span from its snapshot row. The parent
/// of a reclaimed region is gone from the snapshot (reclaim severs the
/// link); [`NO_REGION`] stands in, which no capture-side observable reads.
fn span_from(rs: &RegionSnapshot) -> Span {
    Span {
        region: rs.region,
        parent: rs.parent.map_or(NO_REGION, |p| p),
        opened_at: rs.born_at,
        closed_at: rs.closed_at,
        allocs: rs.allocs,
        alloc_words: rs.alloc_words,
        rc_updates: rs.rc_updates,
        checks: rs.checks,
        checks_failed: rs.checks_failed,
        faults: 0,
        freed_words: rs.freed_words,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::TypeLayout;
    use crate::rcops::WriteMode;
    use crate::snapshot::SnapshotReason;

    /// Restore must be an exact fixpoint of this heap's snapshot.
    fn assert_fixpoint(h: &Heap) {
        let snap = h.snapshot(SnapshotReason::Exit);
        snap.verify_against(h).expect("source snapshot verifies");
        let restored = Heap::restore(&snap).expect("restore succeeds");
        let again = snap.resnapshot(&restored);
        assert_eq!(again.render(), snap.render(), "snapshot ∘ restore is the identity");
        assert_eq!(restored.stats.live_words, h.stats.live_words);
        assert_eq!(restored.region_live_words(), h.region_live_words());
        restored.audit().expect("restored heap audits clean");
    }

    #[test]
    fn restores_fresh_heap() {
        assert_fixpoint(&Heap::with_defaults());
    }

    #[test]
    fn restores_worked_heap_with_all_allocators() {
        // Mirrors snapshot.rs's worked_heap: regions, malloc, gc, spans,
        // sites, and a deleted region.
        let mut h = Heap::with_defaults();
        let ty = h.register_type(TypeLayout::data("cell", 3));
        let big = h.register_type(TypeLayout::data("big", 2000));
        h.enable_spans(1024);
        let r1 = h.new_region();
        let r2 = h.new_subregion(r1).unwrap();
        h.set_trace_site(7);
        h.ralloc(r1, ty).unwrap();
        h.rarray_alloc(r1, ty, 4).unwrap();
        h.set_trace_site(12);
        h.ralloc(r2, big).unwrap();
        let m = h.m_alloc(ty, 2).unwrap();
        h.m_alloc(big, 1).unwrap();
        h.m_free(m).unwrap();
        let g = h.gc_alloc(ty, 5).unwrap();
        h.gc_alloc(ty, 1).unwrap();
        h.gc_collect(&[g.raw()]);
        h.delete_region(r2).unwrap();
        assert_fixpoint(&h);
    }

    #[test]
    fn restores_nonzero_reference_counts() {
        // A malloc global points into a region, and a region object points
        // into a sibling: both rc's must be witnessed by the restored heap.
        let mut h = Heap::with_defaults();
        let holder = h.register_type(TypeLayout::new(
            "holder",
            vec![SlotKind::Ptr(PtrKind::Counted); 2],
        ));
        let cell = h.register_type(TypeLayout::data("cell", 2));
        let ra = h.new_region();
        let rb = h.new_region();
        let a = h.ralloc(ra, cell).unwrap();
        let b = h.ralloc(rb, cell).unwrap();
        let g = h.m_alloc(holder, 1).unwrap();
        h.write_ptr(g, 0, a, WriteMode::Counted).unwrap();
        h.write_ptr(g, 1, b, WriteMode::Counted).unwrap();
        let ha = h.ralloc(ra, holder).unwrap();
        h.write_ptr(ha, 0, b, WriteMode::Counted).unwrap();
        assert_eq!(h.regions[rb.0 as usize].rc, 2);
        h.audit().unwrap();
        assert_fixpoint(&h);
    }

    #[test]
    fn restores_doomed_region_under_deferred_policy() {
        let mut h = Heap::new(HeapConfig {
            delete_policy: DeletePolicy::Deferred,
            ..HeapConfig::default()
        });
        let holder = h.register_type(TypeLayout::new(
            "holder",
            vec![SlotKind::Ptr(PtrKind::Counted)],
        ));
        let cell = h.register_type(TypeLayout::data("cell", 2));
        let r = h.new_region();
        let obj = h.ralloc(r, cell).unwrap();
        let g = h.m_alloc(holder, 1).unwrap();
        h.write_ptr(g, 0, obj, WriteMode::Counted).unwrap();
        h.delete_region(r).unwrap();
        assert!(h.regions[r.0 as usize].doomed);
        assert!(h.regions[r.0 as usize].alive);
        assert_fixpoint(&h);
        let snap = h.snapshot(SnapshotReason::Exit);
        let restored = Heap::restore(&snap).unwrap();
        assert!(restored.regions[r.0 as usize].doomed, "doomed flag survives restore");
    }

    #[test]
    fn restored_heap_accepts_new_work() {
        let mut h = Heap::with_defaults();
        let ty = h.register_type(TypeLayout::data("cell", 4));
        let r = h.new_region();
        h.ralloc(r, ty).unwrap();
        let snap = h.snapshot(SnapshotReason::Exit);
        let mut restored = Heap::restore(&snap).unwrap();
        // The restored heap is live: allocate, create regions, audit.
        let ty2 = restored.register_type(TypeLayout::data("more", 8));
        let r2 = restored.new_region();
        restored.ralloc(r2, ty2).unwrap();
        restored.ralloc(RegionId(r.0), ty2).unwrap();
        restored.audit().unwrap();
        assert_eq!(
            restored.stats.live_words,
            h.stats.live_words + 16,
            "live gauge continues from the captured value"
        );
    }

    #[test]
    fn round_trips_through_json() {
        let mut h = Heap::with_defaults();
        let ty = h.register_type(TypeLayout::data("cell", 3));
        let r = h.new_region();
        h.ralloc(r, ty).unwrap();
        h.m_alloc(ty, 2).unwrap();
        let mut snap = h.snapshot(SnapshotReason::Trap);
        snap.label = "unit/restore".to_string();
        let text = snap.render();
        let doc = crate::json::Json::parse(&text).unwrap();
        let parsed = HeapSnapshot::from_json(&doc).unwrap();
        let restored = Heap::restore(&parsed).unwrap();
        assert_eq!(parsed.resnapshot(&restored).render(), text);
    }

    #[test]
    fn rejects_duplicate_region_ids() {
        let mut h = Heap::with_defaults();
        let _ = h.new_region();
        let mut snap = h.snapshot(SnapshotReason::Exit);
        snap.regions[1].region = 0;
        let err = Heap::restore(&snap).unwrap_err();
        assert!(matches!(err, RtError::SnapshotCorrupt { .. }), "{err:?}");
        assert!(err.to_string().contains("duplicate or shuffled"), "{err}");
    }

    #[test]
    fn rejects_inconsistent_accounting() {
        let mut h = Heap::with_defaults();
        let ty = h.register_type(TypeLayout::data("cell", 3));
        let r = h.new_region();
        h.ralloc(r, ty).unwrap();
        let base = h.snapshot(SnapshotReason::Exit);

        let mut bad = base.clone();
        bad.regions[1].live_words += 1;
        assert!(matches!(
            Heap::restore(&bad).unwrap_err(),
            RtError::SnapshotCorrupt { .. }
        ));

        let mut bad = base.clone();
        bad.free_chain.push(9999);
        assert!(matches!(
            Heap::restore(&bad).unwrap_err(),
            RtError::SnapshotCorrupt { .. }
        ));

        let mut bad = base.clone();
        bad.stats.live_words += 5;
        assert!(matches!(
            Heap::restore(&bad).unwrap_err(),
            RtError::SnapshotCorrupt { .. }
        ));

        let mut bad = base.clone();
        bad.regions[1].rc = 3; // nothing can witness these references
        assert!(matches!(
            Heap::restore(&bad).unwrap_err(),
            RtError::SnapshotCorrupt { .. }
        ));

        let mut bad = base;
        bad.regions[1].parent = Some(7);
        assert!(matches!(
            Heap::restore(&bad).unwrap_err(),
            RtError::SnapshotCorrupt { .. }
        ));
    }
}
