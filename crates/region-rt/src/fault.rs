//! Deterministic fault injection.
//!
//! RC's safety story (paper §3.2) is that memory errors surface as *defined
//! failures* — a bad `deleteregion` fails, a violated annotation aborts —
//! never as crashes. This module provides the torture half of that
//! contract: a [`FaultPlan`] arms one or more *planes* (injection sites)
//! of the runtime so that the Nth page acquire, the Nth allocation, a
//! reference-count update, or an annotation check fails on demand with the
//! same typed [`RtError`](crate::RtError) a real failure would produce.
//!
//! Everything is deterministic. Schedules fire at fixed operation
//! ordinals; probabilistic arms draw from a SplitMix64 stream seeded by
//! the plan, not by wall-clock entropy; and every injected fault is logged
//! with its operation ordinal and virtual-clock stamp, so two runs of the
//! same program under the same plan produce byte-identical
//! [`FaultReport`]s — the same property the timeline sampler has, and what
//! makes the `fault-matrix` CI gate feasible.
//!
//! Disabled planes follow the [`sample_tick`](crate::Heap::sample_tick)
//! discipline: each hook is a single branch on an `Option` discriminant
//! when no arm is installed, so the hot paths pay nothing measurable when
//! fault injection is off (the default).

use crate::cost::Cycles;
use crate::json::Json;

/// Stamp of an injected fault whose virtual-clock time is not yet known
/// (the page store fires faults below the [`Heap`](crate::Heap) layer,
/// which back-fills the stamp on the error path or at harvest).
pub const STAMP_PENDING: Cycles = u64::MAX;

/// An injection site in the runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPlane {
    /// `page.rs::grow`: the Nth fresh page acquisition fails with
    /// [`RtError::OutOfMemory`](crate::RtError::OutOfMemory) (recycled
    /// pages do not count; this models commit failure, not reuse).
    PageAcquire,
    /// The allocator entry points — `rarrayalloc`, `malloc`, GC alloc —
    /// share one operation counter, so "fail the Nth allocation" lands at
    /// the same program point regardless of which backend serves it.
    Alloc,
    /// A reference-count update fails with
    /// [`RtError::RcOverflow`](crate::RtError::RcOverflow) *before* any
    /// count or slot is mutated, modelling a saturated region count
    /// without corrupting the heap (the post-fault audit must stay clean).
    RcSaturate,
    /// A Figure 3(b) annotation check is forced to fail with
    /// [`RtError::CheckFailed`](crate::RtError::CheckFailed); the store is
    /// suppressed exactly as for a genuine violation.
    CheckFail,
}

impl FaultPlane {
    /// Stable plane name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            FaultPlane::PageAcquire => "page_acquire",
            FaultPlane::Alloc => "alloc",
            FaultPlane::RcSaturate => "rc_saturate",
            FaultPlane::CheckFail => "check_fail",
        }
    }
}

/// When an armed plane fires, in terms of that plane's 1-based operation
/// ordinal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultMode {
    /// Fire exactly at the listed ordinals.
    Schedule(Vec<u64>),
    /// Fire at every multiple of `n` (n ≥ 1).
    EveryNth(u64),
    /// Fire with probability `per_mille`/1000 per operation, drawn from a
    /// SplitMix64 stream over `seed` (deterministic; no host entropy).
    Probabilistic {
        /// RNG seed.
        seed: u64,
        /// Firing probability in thousandths.
        per_mille: u32,
    },
}

impl FaultMode {
    /// Fire once, at the `n`th operation.
    pub fn nth(n: u64) -> FaultMode {
        FaultMode::Schedule(vec![n])
    }

    /// Encodes the mode for reports.
    pub fn to_json(&self) -> Json {
        match self {
            FaultMode::Schedule(ords) => Json::obj(vec![
                ("mode", Json::s("schedule")),
                ("ordinals", Json::A(ords.iter().map(|&o| Json::U(o)).collect())),
            ]),
            FaultMode::EveryNth(n) => {
                Json::obj(vec![("mode", Json::s("every_nth")), ("n", Json::U(*n))])
            }
            FaultMode::Probabilistic { seed, per_mille } => Json::obj(vec![
                ("mode", Json::s("probabilistic")),
                ("seed", Json::U(*seed)),
                ("per_mille", Json::U(*per_mille as u64)),
            ]),
        }
    }
}

/// A complete fault-injection plan: which planes are armed and how.
///
/// Install with [`Heap::install_faults`](crate::Heap::install_faults);
/// harvest the injection log with
/// [`Heap::take_faults`](crate::Heap::take_faults). The default plan arms
/// nothing.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Arm for [`FaultPlane::PageAcquire`].
    pub page_acquire: Option<FaultMode>,
    /// Arm for [`FaultPlane::Alloc`].
    pub alloc: Option<FaultMode>,
    /// Arm for [`FaultPlane::RcSaturate`].
    pub rc_saturate: Option<FaultMode>,
    /// Arm for [`FaultPlane::CheckFail`].
    pub check_fail: Option<FaultMode>,
    /// Sticky arms keep failing every armed operation after their first
    /// firing — the behaviour of a genuinely exhausted resource, and what
    /// the degradation property tests assert against ("every subsequent
    /// call returns `Err`").
    pub sticky: bool,
}

impl FaultPlan {
    /// A plan that arms nothing.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Whether no plane is armed.
    pub fn is_empty(&self) -> bool {
        self.page_acquire.is_none()
            && self.alloc.is_none()
            && self.rc_saturate.is_none()
            && self.check_fail.is_none()
    }

    /// Arms the page-acquire plane.
    pub fn fail_page_acquire(mut self, mode: FaultMode) -> FaultPlan {
        self.page_acquire = Some(mode);
        self
    }

    /// Arms the unified allocation plane.
    pub fn fail_alloc(mut self, mode: FaultMode) -> FaultPlan {
        self.alloc = Some(mode);
        self
    }

    /// Arms the reference-count saturation plane.
    pub fn saturate_rc(mut self, mode: FaultMode) -> FaultPlan {
        self.rc_saturate = Some(mode);
        self
    }

    /// Arms the annotation-check plane.
    pub fn fail_checks(mut self, mode: FaultMode) -> FaultPlan {
        self.check_fail = Some(mode);
        self
    }

    /// Makes every arm sticky (fail forever after the first firing).
    pub fn sticky(mut self) -> FaultPlan {
        self.sticky = true;
        self
    }

    /// Encodes the plan for report headers.
    pub fn to_json(&self) -> Json {
        let arm = |m: &Option<FaultMode>| m.as_ref().map_or(Json::Null, FaultMode::to_json);
        Json::obj(vec![
            ("page_acquire", arm(&self.page_acquire)),
            ("alloc", arm(&self.alloc)),
            ("rc_saturate", arm(&self.rc_saturate)),
            ("check_fail", arm(&self.check_fail)),
            ("sticky", Json::Bool(self.sticky)),
        ])
    }
}

/// One injected fault: which plane fired, at which of its operations, and
/// when on the virtual clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedFault {
    /// The plane that fired.
    pub plane: FaultPlane,
    /// 1-based operation ordinal on that plane.
    pub op: u64,
    /// Virtual-clock cycles at injection.
    pub at: Cycles,
}

impl InjectedFault {
    /// Encodes the injection for reports.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("plane", Json::s(self.plane.name())),
            ("op", Json::U(self.op)),
            ("at", Json::U(self.at)),
        ])
    }
}

/// SplitMix64 step (the same generator the property-test harnesses use).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runtime state of one armed plane: the mode, the operation counter, and
/// the log of injections so far.
#[derive(Debug)]
pub struct FaultArm {
    plane: FaultPlane,
    mode: FaultMode,
    sticky: bool,
    tripped: bool,
    ops: u64,
    rng: u64,
    injected: Vec<InjectedFault>,
}

impl FaultArm {
    /// Arms a plane.
    pub fn new(plane: FaultPlane, mode: FaultMode, sticky: bool) -> FaultArm {
        let rng = match mode {
            FaultMode::Probabilistic { seed, .. } => seed,
            _ => 0,
        };
        FaultArm { plane, mode, sticky, tripped: false, ops: 0, rng, injected: Vec::new() }
    }

    /// Counts one operation on this plane; returns whether the fault fires
    /// for it, logging the injection (stamped `at`) if so.
    pub fn tick(&mut self, at: Cycles) -> bool {
        self.ops += 1;
        let fire = (self.sticky && self.tripped) || self.decide();
        if fire {
            self.tripped = true;
            self.injected.push(InjectedFault { plane: self.plane, op: self.ops, at });
        }
        fire
    }

    fn decide(&mut self) -> bool {
        match &self.mode {
            FaultMode::Schedule(ords) => ords.contains(&self.ops),
            FaultMode::EveryNth(n) => *n >= 1 && self.ops.is_multiple_of(*n),
            FaultMode::Probabilistic { per_mille, .. } => {
                splitmix64(&mut self.rng) % 1000 < *per_mille as u64
            }
        }
    }

    /// Back-fills the virtual-clock stamp of injections recorded below the
    /// heap layer (stamped [`STAMP_PENDING`] at firing time).
    pub fn stamp_pending(&mut self, at: Cycles) {
        for f in &mut self.injected {
            if f.at == STAMP_PENDING {
                f.at = at;
            }
        }
    }

    /// The plane this arm is installed on.
    pub fn plane(&self) -> FaultPlane {
        self.plane
    }

    /// Operations seen on this plane so far.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Whether the arm has fired at least once.
    pub fn tripped(&self) -> bool {
        self.tripped
    }

    /// Injections so far, in firing order.
    pub fn injected(&self) -> &[InjectedFault] {
        &self.injected
    }

    fn into_report(self) -> FaultArmReport {
        FaultArmReport {
            plane: self.plane,
            mode: self.mode,
            sticky: self.sticky,
            ops: self.ops,
            injected: self.injected,
        }
    }
}

/// Harvested state of one arm after a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultArmReport {
    /// The plane the arm was installed on.
    pub plane: FaultPlane,
    /// The firing mode.
    pub mode: FaultMode,
    /// Whether the arm was sticky.
    pub sticky: bool,
    /// Operations observed on the plane.
    pub ops: u64,
    /// Every injection, in firing order.
    pub injected: Vec<InjectedFault>,
}

impl FaultArmReport {
    /// Encodes the arm for reports.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("plane", Json::s(self.plane.name())),
            ("mode", self.mode.to_json()),
            ("sticky", Json::Bool(self.sticky)),
            ("ops", Json::U(self.ops)),
            ("injected", Json::A(self.injected.iter().map(InjectedFault::to_json).collect())),
        ])
    }
}

/// The harvested result of a faulted run: per-arm operation counts and
/// injection logs. Byte-deterministic for a deterministic workload.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultReport {
    /// One entry per installed arm, in plane declaration order.
    pub arms: Vec<FaultArmReport>,
}

impl FaultReport {
    /// Builds a report from harvested arms (crate-internal).
    pub(crate) fn from_arms(arms: Vec<FaultArm>) -> FaultReport {
        FaultReport { arms: arms.into_iter().map(FaultArm::into_report).collect() }
    }

    /// Total injections across all arms.
    pub fn total_injected(&self) -> usize {
        self.arms.iter().map(|a| a.injected.len()).sum()
    }

    /// The first injection on the virtual clock (ties broken by plane
    /// declaration order).
    pub fn first(&self) -> Option<InjectedFault> {
        self.arms.iter().filter_map(|a| a.injected.first().copied()).min_by_key(|f| f.at)
    }

    /// Encodes the report.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("total_injected", Json::U(self.total_injected() as u64)),
            ("arms", Json::A(self.arms.iter().map(FaultArmReport::to_json).collect())),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_fires_exactly_at_its_ordinals() {
        let mut arm = FaultArm::new(FaultPlane::Alloc, FaultMode::Schedule(vec![2, 5]), false);
        let fired: Vec<bool> = (0..6).map(|i| arm.tick(i * 10)).collect();
        assert_eq!(fired, [false, true, false, false, true, false]);
        assert_eq!(arm.ops(), 6);
        assert_eq!(arm.injected().len(), 2);
        assert_eq!(arm.injected()[0], InjectedFault { plane: FaultPlane::Alloc, op: 2, at: 10 });
        assert_eq!(arm.injected()[1].op, 5);
    }

    #[test]
    fn every_nth_fires_periodically() {
        let mut arm = FaultArm::new(FaultPlane::PageAcquire, FaultMode::EveryNth(3), false);
        let fired: Vec<bool> = (0..9).map(|_| arm.tick(0)).collect();
        assert_eq!(fired, [false, false, true, false, false, true, false, false, true]);
    }

    #[test]
    fn sticky_arms_fail_forever_after_first_firing() {
        let mut arm = FaultArm::new(FaultPlane::Alloc, FaultMode::nth(3), true);
        let fired: Vec<bool> = (0..6).map(|_| arm.tick(7)).collect();
        assert_eq!(fired, [false, false, true, true, true, true]);
        assert!(arm.tripped());
        // Every firing is logged with its own ordinal.
        let ops: Vec<u64> = arm.injected().iter().map(|f| f.op).collect();
        assert_eq!(ops, [3, 4, 5, 6]);
    }

    #[test]
    fn probabilistic_is_deterministic_per_seed() {
        let run = |seed| {
            let mut arm = FaultArm::new(
                FaultPlane::RcSaturate,
                FaultMode::Probabilistic { seed, per_mille: 250 },
                false,
            );
            (0..64).map(|_| arm.tick(0)).collect::<Vec<bool>>()
        };
        assert_eq!(run(7), run(7), "same seed, same firing pattern");
        assert_ne!(run(7), run(8), "different seeds diverge");
        let fires = run(7).iter().filter(|&&b| b).count();
        assert!(fires > 0 && fires < 64, "~25% firing rate, got {fires}/64");
    }

    #[test]
    fn pending_stamps_are_back_filled() {
        let mut arm = FaultArm::new(FaultPlane::PageAcquire, FaultMode::nth(1), false);
        assert!(arm.tick(STAMP_PENDING));
        assert_eq!(arm.injected()[0].at, STAMP_PENDING);
        arm.stamp_pending(1234);
        assert_eq!(arm.injected()[0].at, 1234);
    }

    #[test]
    fn plan_builder_and_emptiness() {
        assert!(FaultPlan::new().is_empty());
        let plan = FaultPlan::new()
            .fail_alloc(FaultMode::nth(10))
            .saturate_rc(FaultMode::EveryNth(5))
            .sticky();
        assert!(!plan.is_empty());
        assert!(plan.sticky);
        assert!(plan.page_acquire.is_none());
        assert_eq!(plan.alloc, Some(FaultMode::Schedule(vec![10])));
    }

    #[test]
    fn report_json_is_stable_and_complete() {
        let mut arm = FaultArm::new(FaultPlane::Alloc, FaultMode::nth(2), true);
        arm.tick(5);
        arm.tick(9);
        let report = FaultReport::from_arms(vec![arm]);
        assert_eq!(report.total_injected(), 1);
        assert_eq!(report.first().map(|f| f.op), Some(2));
        let text = report.to_json().render();
        assert!(text.contains("\"plane\":\"alloc\""), "{text}");
        assert!(text.contains("\"ops\":2"), "{text}");
        // Rendering is deterministic.
        assert_eq!(text, report.to_json().render());
    }
}
