//! Instruction cost model.
//!
//! The paper quantifies the price of its runtime mechanisms in SPARC
//! instructions: the straightforward reference-count update of Figure 3(a)
//! "takes 23 SPARC instructions", while the annotation checks of Figure 3(b)
//! "take between 6 and 14 SPARC instructions and do not need to read the
//! value being overwritten". Because our substrate is an interpreter rather
//! than the authors' Ultra 10, we charge these published instruction counts
//! to a virtual clock; every experiment reports time in *charged
//! instructions*, and the benchmark harness converts them to relative
//! overheads (the quantities the paper's figures compare).
//!
//! All constants are overridable so that ablation benches can explore the
//! design space (e.g. "what if the parentptr check cost as much as a count
//! update?").

/// Virtual time, measured in charged (SPARC-equivalent) instructions.
pub type Cycles = u64;

/// Cost constants for every charged operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostModel {
    /// Full Figure 3(a) reference-count update: both `regionof`s differ from
    /// each other and from the container (paper: 23 instructions).
    pub rc_update_full: Cycles,
    /// Figure 3(a) when the early `regionof(oldval) != regionof(newval)`
    /// test fails: load old value, two lookups, compare.
    pub rc_update_same: Cycles,
    /// `sameregion` runtime check (Figure 3(b)): null test + one `regionof`
    /// + compare (lower end of the 6–14 range).
    pub check_sameregion: Cycles,
    /// `traditional` runtime check: null test + `regionof` + compare.
    pub check_traditional: Cycles,
    /// `parentptr` runtime check: two `regionof`s + DFS interval test
    /// (upper end of the 6–14 range).
    pub check_parentptr: Cycles,
    /// A pointer store with no runtime work at all (statically safe, or
    /// checks disabled): just the store.
    pub store_plain: Cycles,
    /// One interpreter "simple operation" (arithmetic, compare, move): the
    /// base cost against which overheads are measured.
    pub base_op: Cycles,
    /// Fixed cost of `ralloc` on the bump-allocator fast path.
    pub region_alloc: Cycles,
    /// Extra cost when an allocation needs a fresh page from the OS.
    pub page_fetch: Cycles,
    /// Extra cost when an allocation reuses a page from the free pool
    /// (region deletion makes whole pages instantly reusable — one of the
    /// structural advantages regions have over malloc/free).
    pub page_recycle: Cycles,
    /// Per-word cost of the delete-time scan that removes a dead region's
    /// references to other regions ("region unscan" in Table 2).
    pub unscan_per_word: Cycles,
    /// Cost of creating a region (allocator setup).
    pub region_create: Cycles,
    /// Per-region cost of the DFS renumbering performed when a subregion is
    /// created (paper: "updates this numbering every time a region is
    /// created").
    pub renumber_per_region: Cycles,
    /// Cost of pinning/unpinning one live local around a call to a
    /// `deletes` function (increment + later decrement).
    pub local_pin_pair: Cycles,
    /// malloc fast path (free-list hit).
    pub malloc_alloc: Cycles,
    /// malloc slow path extra (split / new page).
    pub malloc_slow_extra: Cycles,
    /// free: push onto a size-class free list.
    pub malloc_free: Cycles,
    /// Conservative GC: cost per word examined while marking.
    pub gc_mark_per_word: Cycles,
    /// Conservative GC: cost per object swept.
    pub gc_sweep_per_obj: Cycles,
    /// GC allocation (bump + header).
    pub gc_alloc: Cycles,
    /// C@ (the prior system) scanned the stack at `deleteregion` instead of
    /// pinning locals at `deletes` calls; per-slot cost of that scan.
    pub cat_stack_scan_per_slot: Cycles,
    /// C@ compiled with lcc rather than gcc; the paper attributes part of
    /// RC's win to the better base compiler. Base-op costs for the C@
    /// configuration are multiplied by this factor (in percent, 100 = 1.0).
    pub cat_base_factor_pct: u64,
}

impl CostModel {
    /// The paper-calibrated model (all constants cited above).
    pub fn paper() -> CostModel {
        CostModel {
            rc_update_full: 23,
            rc_update_same: 8,
            check_sameregion: 6,
            check_traditional: 6,
            check_parentptr: 14,
            store_plain: 1,
            base_op: 1,
            region_alloc: 8,
            page_fetch: 150,
            page_recycle: 15,
            unscan_per_word: 2,
            region_create: 60,
            renumber_per_region: 3,
            local_pin_pair: 4,
            malloc_alloc: 30,
            malloc_slow_extra: 60,
            malloc_free: 20,
            gc_mark_per_word: 4,
            gc_sweep_per_obj: 6,
            gc_alloc: 14,
            cat_stack_scan_per_slot: 6,
            cat_base_factor_pct: 112,
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::paper()
    }
}

/// A virtual clock accumulating charged instructions.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Clock {
    cycles: Cycles,
}

impl Clock {
    /// A clock at zero.
    pub fn new() -> Clock {
        Clock::default()
    }

    /// Charges `c` instructions.
    #[inline]
    pub fn charge(&mut self, c: Cycles) {
        self.cycles += c;
    }

    /// Total charged so far.
    pub fn cycles(&self) -> Cycles {
        self.cycles
    }

    /// Resets to zero.
    pub fn reset(&mut self) {
        self.cycles = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants_match_citations() {
        let m = CostModel::paper();
        assert_eq!(m.rc_update_full, 23, "Fig 3(a): 23 SPARC instructions");
        assert!(
            (6..=14).contains(&m.check_sameregion)
                && (6..=14).contains(&m.check_traditional)
                && (6..=14).contains(&m.check_parentptr),
            "Fig 3(b): checks take between 6 and 14 instructions"
        );
        // The whole point of the annotations: a check is cheaper than a
        // count update.
        assert!(m.check_parentptr < m.rc_update_full);
    }

    #[test]
    fn clock_accumulates() {
        let mut c = Clock::new();
        c.charge(5);
        c.charge(7);
        assert_eq!(c.cycles(), 12);
        c.reset();
        assert_eq!(c.cycles(), 0);
    }
}
