//! The page store and the page → owner map.
//!
//! Each 8 KB page belongs to exactly one owner, "and the library maintains a
//! map from pages to regions. This allows efficient implementation of the
//! `regionof` function and of reference counting" (paper §3.3.1).

use crate::addr::{Addr, WORDS_PER_PAGE};
use crate::cost::Cycles;
use crate::error::RtError;
use crate::fault::{FaultArm, STAMP_PENDING};
use crate::region::RegionId;

/// Who owns a page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageOwner {
    /// Not currently allocated to anyone.
    Free,
    /// Owned by a region's allocators (the traditional region's pages use
    /// this too, including the malloc heap, which the paper folds into the
    /// "traditional region").
    Region(RegionId),
    /// Owned by the conservative-GC baseline's heap.
    Gc,
}

/// The backing store: page data plus the page → owner map.
#[derive(Debug)]
pub struct PageStore {
    pages: Vec<Box<[u64]>>,
    owners: Vec<PageOwner>,
    free: Vec<u32>,
    /// Maximum number of pages that may ever be allocated (0 = unlimited).
    page_budget: usize,
    /// Armed fault plane for fresh page acquisition (None = disabled; the
    /// hot path pays one branch, like `sample_tick`). The arm lives down
    /// here because `grow` has no access to the heap's virtual clock, so
    /// its injections are stamped [`STAMP_PENDING`] and back-filled by the
    /// heap's OOM error paths.
    fault: Option<Box<FaultArm>>,
}

impl PageStore {
    /// Creates a store. Page 0 is reserved so that address 0 is never a
    /// valid object address.
    pub fn new(page_budget: usize) -> PageStore {
        PageStore {
            pages: vec![vec![0u64; WORDS_PER_PAGE].into_boxed_slice()],
            owners: vec![PageOwner::Free],
            free: Vec::new(),
            page_budget,
            fault: None,
        }
    }

    /// Rebuilds a store from a snapshot's page → owner map and free chain
    /// (restore path). `owners` covers the committed pages `1..`; the
    /// reserved page 0 is prepended here. Page *contents* are not part of
    /// a snapshot, so every page comes back zeroed; the restore layer
    /// rewrites the words it needs (counted holder slots) afterwards.
    pub(crate) fn from_snapshot(
        owners: Vec<PageOwner>,
        free: Vec<u32>,
        page_budget: usize,
    ) -> PageStore {
        let mut all = Vec::with_capacity(owners.len() + 1);
        all.push(PageOwner::Free);
        all.extend(owners);
        PageStore {
            pages: all
                .iter()
                .map(|_| vec![0u64; WORDS_PER_PAGE].into_boxed_slice())
                .collect(),
            owners: all,
            free,
            page_budget,
            fault: None,
        }
    }

    /// Installs (or clears) the page-acquire fault arm.
    pub fn set_fault_arm(&mut self, arm: Option<Box<FaultArm>>) {
        self.fault = arm;
    }

    /// Detaches and returns the page-acquire fault arm, if any.
    pub fn take_fault_arm(&mut self) -> Option<Box<FaultArm>> {
        self.fault.take()
    }

    /// Whether a page-acquire fault arm is installed.
    pub fn fault_armed(&self) -> bool {
        self.fault.is_some()
    }

    /// Back-fills pending virtual-clock stamps on the page arm's injection
    /// log (called from the heap's out-of-memory error paths, where the
    /// clock is in scope).
    pub fn stamp_fault(&mut self, at: Cycles) {
        if let Some(arm) = self.fault.as_mut() {
            arm.stamp_pending(at);
        }
    }

    /// Total pages ever created (including the reserved page 0).
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Pages ever committed, excluding the reserved page 0.
    pub fn pages_committed(&self) -> usize {
        self.pages.len() - 1
    }

    /// Committed pages currently assigned to an owner, per the page map
    /// (the ground truth the timeline sampler and auditor report against).
    pub fn pages_in_use(&self) -> usize {
        // The reserved page 0 is marked Free, so it never counts here.
        self.owners.iter().filter(|&&o| o != PageOwner::Free).count()
    }

    /// Committed pages sitting in the free pool, awaiting recycling.
    pub fn pages_free(&self) -> usize {
        self.free.len()
    }

    /// The free pool itself, in release order (the tail is recycled
    /// first); snapshots record it so the page map round-trips exactly.
    pub fn free_chain(&self) -> &[u32] {
        &self.free
    }

    /// Acquires one page for `owner`, recycling a free page if possible.
    ///
    /// # Errors
    ///
    /// Returns [`RtError::OutOfMemory`] if the page budget is exhausted.
    pub fn acquire(&mut self, owner: PageOwner) -> Result<u32, RtError> {
        Ok(self.acquire2(owner)?.0)
    }

    /// As [`PageStore::acquire`], also reporting whether the page was
    /// recycled from the free pool (cheap) rather than fetched fresh
    /// (expensive) — the distinction the cost model charges.
    ///
    /// # Errors
    ///
    /// Returns [`RtError::OutOfMemory`] if the page budget is exhausted.
    pub fn acquire2(&mut self, owner: PageOwner) -> Result<(u32, bool), RtError> {
        debug_assert!(owner != PageOwner::Free);
        if let Some(p) = self.free.pop() {
            self.owners[p as usize] = owner;
            self.pages[p as usize].fill(0);
            return Ok((p, true));
        }
        Ok((self.grow(owner)?, false))
    }

    /// Acquires `n` *contiguous* fresh pages (for objects larger than one
    /// page); contiguity is guaranteed by always growing the store.
    ///
    /// # Errors
    ///
    /// Returns [`RtError::OutOfMemory`] if the page budget is exhausted.
    pub fn acquire_span(&mut self, owner: PageOwner, n: usize) -> Result<u32, RtError> {
        debug_assert!(n >= 1);
        let first = self.grow(owner)?;
        for _ in 1..n {
            self.grow(owner)?;
        }
        Ok(first)
    }

    fn grow(&mut self, owner: PageOwner) -> Result<u32, RtError> {
        if let Some(arm) = self.fault.as_mut() {
            if arm.tick(STAMP_PENDING) {
                return Err(RtError::OutOfMemory);
            }
        }
        if self.page_budget != 0 && self.pages.len() >= self.page_budget {
            return Err(RtError::OutOfMemory);
        }
        let idx = self.pages.len() as u32;
        self.pages.push(vec![0u64; WORDS_PER_PAGE].into_boxed_slice());
        self.owners.push(owner);
        Ok(idx)
    }

    /// Returns a page to the free pool.
    pub fn release(&mut self, page: u32) {
        debug_assert!(self.owners[page as usize] != PageOwner::Free, "double release");
        self.owners[page as usize] = PageOwner::Free;
        self.free.push(page);
    }

    /// The owner of the page containing `addr` (the `regionof` primitive is
    /// built on this).
    #[inline]
    pub fn owner_of(&self, addr: Addr) -> PageOwner {
        self.owners
            .get(addr.page() as usize)
            .copied()
            .unwrap_or(PageOwner::Free)
    }

    /// The owner of a page by index.
    #[inline]
    pub fn owner(&self, page: u32) -> PageOwner {
        self.owners[page as usize]
    }

    /// Reads the word at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the page does not exist (a wild pointer, which callers
    /// validate first).
    #[inline]
    pub fn read(&self, addr: Addr) -> u64 {
        self.pages[addr.page() as usize][addr.word() as usize]
    }

    /// Writes the word at `addr`.
    #[inline]
    pub fn write(&mut self, addr: Addr, val: u64) {
        self.pages[addr.page() as usize][addr.word() as usize] = val;
    }

    /// Whether `addr` names a word in a live (non-free) page.
    #[inline]
    pub fn is_live(&self, addr: Addr) -> bool {
        !addr.is_null() && self.owner_of(addr) != PageOwner::Free
    }

    /// All words of one page (for scanning).
    pub fn page_words(&self, page: u32) -> &[u64] {
        &self.pages[page as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_zero_reserved_and_free() {
        let s = PageStore::new(0);
        assert_eq!(s.page_count(), 1);
        assert_eq!(s.owner(0), PageOwner::Free);
    }

    #[test]
    fn acquire_release_recycles() {
        let mut s = PageStore::new(0);
        let r = RegionId(1);
        let p1 = s.acquire(PageOwner::Region(r)).unwrap();
        s.write(Addr::from_parts(p1, 5), 42);
        s.release(p1);
        let p2 = s.acquire(PageOwner::Gc).unwrap();
        assert_eq!(p1, p2, "free pages are recycled");
        assert_eq!(s.read(Addr::from_parts(p2, 5)), 0, "recycled pages are zeroed");
    }

    #[test]
    fn budget_enforced() {
        let mut s = PageStore::new(3); // page 0 + two usable
        assert!(s.acquire(PageOwner::Gc).is_ok());
        assert!(s.acquire(PageOwner::Gc).is_ok());
        assert_eq!(s.acquire(PageOwner::Gc), Err(RtError::OutOfMemory));
    }

    #[test]
    fn span_is_contiguous() {
        let mut s = PageStore::new(0);
        let first = s.acquire_span(PageOwner::Region(RegionId(1)), 3).unwrap();
        for i in 0..3 {
            assert_eq!(s.owner(first + i), PageOwner::Region(RegionId(1)));
        }
    }

    #[test]
    fn usage_gauges_partition_committed_pages() {
        let mut s = PageStore::new(0);
        assert_eq!((s.pages_committed(), s.pages_in_use(), s.pages_free()), (0, 0, 0));
        let p1 = s.acquire(PageOwner::Gc).unwrap();
        let _p2 = s.acquire(PageOwner::Region(RegionId(1))).unwrap();
        assert_eq!((s.pages_committed(), s.pages_in_use(), s.pages_free()), (2, 2, 0));
        s.release(p1);
        assert_eq!((s.pages_committed(), s.pages_in_use(), s.pages_free()), (2, 1, 1));
        // Recycling moves it back without committing anything new.
        s.acquire(PageOwner::Gc).unwrap();
        assert_eq!((s.pages_committed(), s.pages_in_use(), s.pages_free()), (2, 2, 0));
    }

    #[test]
    fn fault_arm_fails_fresh_growth_but_not_recycling() {
        use crate::fault::{FaultMode, FaultPlane};
        let mut s = PageStore::new(0);
        let p1 = s.acquire(PageOwner::Gc).unwrap();
        s.release(p1);
        s.set_fault_arm(Some(Box::new(FaultArm::new(
            FaultPlane::PageAcquire,
            FaultMode::nth(1),
            true,
        ))));
        // Recycled pages bypass grow, so the arm does not see them.
        assert!(s.acquire(PageOwner::Gc).is_ok(), "recycle unaffected");
        assert_eq!(s.acquire(PageOwner::Gc), Err(RtError::OutOfMemory));
        assert_eq!(s.acquire(PageOwner::Gc), Err(RtError::OutOfMemory), "sticky");
        s.stamp_fault(77);
        let arm = s.take_fault_arm().unwrap();
        assert_eq!(arm.ops(), 2);
        assert!(arm.injected().iter().all(|f| f.at == 77));
        // With the arm detached, growth succeeds again.
        assert!(s.acquire(PageOwner::Gc).is_ok());
    }

    #[test]
    fn owner_of_out_of_range_is_free() {
        let s = PageStore::new(0);
        assert_eq!(s.owner_of(Addr::from_parts(999, 0)), PageOwner::Free);
        assert!(!s.is_live(Addr::from_parts(999, 0)));
        assert!(!s.is_live(Addr::NULL));
    }
}
