//! The heap: regions, objects, and the Figure 2 region API.
//!
//! [`Heap`] owns the page store, the region table, the type table, the
//! statistics and the virtual clock. It implements the paper's region API —
//! `newregion`, `newsubregion`, `deleteregion`, `ralloc`, `rarrayalloc`,
//! `regionof` — plus the write barriers of Figure 3 (in
//! [`crate::rcops`]), the malloc/free baseline (in [`crate::malloc`]), and
//! the conservative-GC baseline (in [`crate::gc`]).

use crate::addr::{Addr, WORDS_PER_PAGE};
use crate::cost::{Clock, CostModel};
use crate::error::RtError;
use crate::fault::{FaultArm, FaultMode, FaultPlan, FaultPlane, FaultReport};
use crate::gc::GcState;
use crate::layout::{TypeId, TypeLayout, TypeTable};
use crate::malloc::MallocState;
use crate::page::{PageOwner, PageStore};
use crate::region::{renumber, renumber_gapped, RegionData, RegionId, TRADITIONAL};
use crate::stats::Stats;
use crate::timeline::{occupancy_bucket, HeapGauges, Timeline};
use crate::trace::{mask, Event, Tracer};

/// How the region hierarchy is numbered for the `parentptr` interval
/// check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NumberingScheme {
    /// The paper's implementation: "updates this numbering every time a
    /// region is created" — O(live regions) per creation.
    #[default]
    RenumberOnCreate,
    /// The "more efficient scheme" the paper anticipates: regions carve
    /// gapped intervals out of their parent's, making creation O(1), with
    /// a full (gapped) renumbering only when an interval is exhausted.
    GapBased,
}

/// What `deleteregion` does when the region still has external references
/// (paper §3: "different notions of memory safety can be realised in the
/// RC framework").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeletePolicy {
    /// "deleteregion abort\[s\] the program when there remain references to
    /// the region" — the paper's default, and ours.
    #[default]
    Abort,
    /// "implicit region deletion: ... the system deallocates any regions
    /// whose reference count has dropped to zero. This last option
    /// provides memory safety semantics similar to traditional garbage
    /// collection." `deleteregion` *dooms* the region; it is reclaimed as
    /// soon as its external count reaches zero and its subregions are
    /// gone.
    Deferred,
}

/// Construction options for a [`Heap`].
#[derive(Debug, Clone)]
pub struct HeapConfig {
    /// Maximum number of 8 KB pages (0 = unlimited).
    pub page_budget: usize,
    /// Whether reference counting is enabled (the paper's "norc"
    /// configuration disables it, making `deleteregion` unsafe but free).
    pub rc_enabled: bool,
    /// The instruction cost model.
    pub costs: CostModel,
    /// GC heap-growth threshold in words (collection is suggested when this
    /// many words have been allocated since the last collection).
    pub gc_threshold_words: u64,
    /// What `deleteregion` does when references remain.
    pub delete_policy: DeletePolicy,
    /// Hierarchy numbering scheme (ablation knob).
    pub numbering: NumberingScheme,
}

impl Default for HeapConfig {
    fn default() -> Self {
        HeapConfig {
            page_budget: 0,
            rc_enabled: true,
            costs: CostModel::paper(),
            gc_threshold_words: 4 * 1024,
            delete_policy: DeletePolicy::Abort,
            numbering: NumberingScheme::RenumberOnCreate,
        }
    }
}

/// The simulated heap and region runtime.
#[derive(Debug)]
pub struct Heap {
    pub(crate) store: PageStore,
    pub(crate) regions: Vec<RegionData>,
    pub(crate) types: TypeTable,
    pub(crate) rc_enabled: bool,
    pub(crate) delete_policy: DeletePolicy,
    pub(crate) numbering: NumberingScheme,
    pub(crate) malloc: MallocState,
    pub(crate) gc: GcState,
    /// Dynamic-event counters (public: the harness reads them).
    pub stats: Stats,
    /// The virtual clock (public: the harness reads it).
    pub clock: Clock,
    /// Cost constants (public so ablations can tweak before running).
    pub costs: CostModel,
    /// Enabled telemetry event kinds (a copy of the tracer's mask, kept
    /// inline so disabled emission sites cost a single branch).
    pub(crate) trace_mask: u32,
    /// The attached event recorder, if tracing is enabled.
    pub(crate) tracer: Option<Box<Tracer>>,
    /// Current source line for event attribution (0 = unattributed).
    pub(crate) trace_site: u32,
    /// Ticks until the next timeline sample; 0 means sampling is off, so
    /// the hot-path guard in [`Heap::sample_tick`] is one compare.
    pub(crate) sample_countdown: u64,
    /// The attached timeline sampler, if sampling is enabled.
    pub(crate) timeline: Option<Box<Timeline>>,
    /// Armed fault plane for the unified allocation counter (rarrayalloc,
    /// malloc, GC alloc). None = disabled: the hot-path hook is one branch,
    /// like `sample_tick`. The page-acquire arm lives in the page store.
    pub(crate) fault_alloc: Option<Box<FaultArm>>,
    /// Armed fault plane for reference-count saturation.
    pub(crate) fault_rc: Option<Box<FaultArm>>,
    /// Armed fault plane for forced annotation-check failures.
    pub(crate) fault_check: Option<Box<FaultArm>>,
    /// Per-site check-outcome counter, if check counting is enabled.
    pub(crate) check_counter: Option<Box<crate::checkcount::CheckCounter>>,
    /// Current front-end check-site id for counter attribution.
    pub(crate) check_site: u32,
    /// Static verdict of the current check site (see
    /// [`Heap::set_check_verdict`]); stamped into span check notes.
    pub(crate) check_safe: bool,
    /// The region-lifecycle span tree, if span recording is enabled.
    pub(crate) span_tree: Option<Box<crate::span::SpanTree>>,
}

impl Heap {
    /// Creates a heap with a live traditional region (region 0).
    pub fn new(config: HeapConfig) -> Heap {
        let mut regions = Vec::new();
        let mut traditional = RegionData::new(None);
        traditional.id = 0;
        traditional.nextid = if config.numbering == NumberingScheme::GapBased {
            u64::MAX / 2
        } else {
            1
        };
        traditional.child_cursor = 1;
        regions.push(traditional);
        Heap {
            store: PageStore::new(config.page_budget),
            regions,
            types: TypeTable::new(),
            rc_enabled: config.rc_enabled,
            delete_policy: config.delete_policy,
            numbering: config.numbering,
            malloc: MallocState::new(),
            gc: GcState::new(config.gc_threshold_words),
            stats: Stats::new(),
            clock: Clock::new(),
            costs: config.costs,
            trace_mask: 0,
            tracer: None,
            trace_site: 0,
            sample_countdown: 0,
            timeline: None,
            fault_alloc: None,
            fault_rc: None,
            fault_check: None,
            check_counter: None,
            check_site: crate::checkcount::NO_CHECK_SITE,
            check_safe: false,
            span_tree: None,
        }
    }

    /// A heap with default configuration.
    pub fn with_defaults() -> Heap {
        Heap::new(HeapConfig::default())
    }

    /// Registers an object type.
    pub fn register_type(&mut self, layout: TypeLayout) -> TypeId {
        self.types.register(layout)
    }

    /// Looks up a registered layout.
    pub fn type_layout(&self, id: TypeId) -> &TypeLayout {
        self.types.get(id)
    }

    /// Whether reference counting is enabled.
    pub fn rc_enabled(&self) -> bool {
        self.rc_enabled
    }

    /// Read-only view of the page store, so external tests and tools can
    /// check reported gauges against the page → owner map directly.
    pub fn page_store(&self) -> &PageStore {
        &self.store
    }

    fn region(&self, r: RegionId) -> &RegionData {
        &self.regions[r.0 as usize]
    }

    fn region_mut(&mut self, r: RegionId) -> &mut RegionData {
        &mut self.regions[r.0 as usize]
    }

    pub(crate) fn check_live_region(&self, r: RegionId) -> Result<(), RtError> {
        if !self.region(r).alive {
            Err(RtError::RegionDead { region: r })
        } else {
            Ok(())
        }
    }

    /// `newregion()`: creates a top-level region (a child of the traditional
    /// region, which roots the hierarchy).
    pub fn new_region(&mut self) -> RegionId {
        self.new_subregion(TRADITIONAL)
            .expect("traditional region is always live")
    }

    /// `newsubregion(parent)`: creates a subregion of `parent`.
    ///
    /// # Errors
    ///
    /// Returns [`RtError::RegionDead`] if `parent` was deleted.
    pub fn new_subregion(&mut self, parent: RegionId) -> Result<RegionId, RtError> {
        self.check_live_region(parent)?;
        let id = RegionId(self.regions.len() as u32);
        let mut data = RegionData::new(Some(parent));
        data.born_at = self.clock.cycles();
        self.regions.push(data);
        self.region_mut(parent).children.push(id);
        match self.numbering {
            NumberingScheme::RenumberOnCreate => {
                // The paper's implementation renumbers the whole hierarchy
                // on every region creation.
                let visited = renumber(&mut self.regions);
                self.clock.charge(
                    self.costs.region_create + visited * self.costs.renumber_per_region,
                );
            }
            NumberingScheme::GapBased => {
                let p = &self.regions[parent.0 as usize];
                let available = p.nextid.saturating_sub(p.child_cursor);
                if available >= 4 {
                    // O(1): carve half the parent's remaining space.
                    let lo = p.child_cursor;
                    let width = (available / 2).max(2);
                    let hi = lo + width;
                    let child = &mut self.regions[id.0 as usize];
                    child.id = lo;
                    child.nextid = hi;
                    child.child_cursor = lo + 1;
                    self.regions[parent.0 as usize].child_cursor = hi;
                    self.clock.charge(self.costs.region_create);
                } else {
                    // Interval exhausted: fall back to a full gapped
                    // renumbering.
                    let visited = renumber_gapped(&mut self.regions);
                    self.stats.renumber_fallbacks += 1;
                    self.clock.charge(
                        self.costs.region_create
                            + visited * self.costs.renumber_per_region,
                    );
                }
            }
        }
        self.stats.regions_created += 1;
        if self.trace_on(mask::REGION_CREATED | mask::SUBREGION_CREATED) {
            let at = self.clock.cycles();
            let ev = if parent == TRADITIONAL {
                Event::RegionCreated { region: id.0, at }
            } else {
                Event::SubregionCreated { region: id.0, parent: parent.0, at }
            };
            if self.trace_mask & ev.mask_bit() != 0 {
                self.trace_emit(ev);
            }
        }
        if self.span_on() {
            // Open at born_at so span durations equal the profile's
            // lifetime_cycles exactly.
            let born = self.regions[id.0 as usize].born_at;
            self.span_open(id.0, parent.0, born);
        }
        self.sample_tick();
        Ok(id)
    }

    /// `deleteregion(r)`: deletes a region and all objects in it.
    ///
    /// When reference counting is enabled the call fails if external
    /// references remain or if live subregions exist; on success the
    /// region's references *into other regions* are removed by scanning the
    /// objects of its `normal` allocator (the "region unscan" of Table 2).
    ///
    /// # Errors
    ///
    /// - [`RtError::TraditionalImmortal`] for the traditional region.
    /// - [`RtError::RegionDead`] if already deleted.
    /// - [`RtError::DeleteWithSubregions`] if live subregions remain.
    /// - [`RtError::DeleteWithLiveRefs`] if the reference count is non-zero
    ///   (only when reference counting is enabled).
    pub fn delete_region(&mut self, r: RegionId) -> Result<(), RtError> {
        if r == TRADITIONAL {
            return Err(RtError::TraditionalImmortal);
        }
        self.check_live_region(r)?;
        let blocked_by_children = !self.region(r).children.is_empty();
        let blocked_by_refs = self.rc_enabled && self.region(r).rc != 0;
        if blocked_by_children || blocked_by_refs {
            match self.delete_policy {
                DeletePolicy::Abort => {
                    if blocked_by_children {
                        return Err(RtError::DeleteWithSubregions { region: r });
                    }
                    return Err(RtError::DeleteWithLiveRefs {
                        region: r,
                        rc: self.region(r).rc,
                    });
                }
                DeletePolicy::Deferred => {
                    // Doom the region; it is reclaimed when the count
                    // drops to zero and the last subregion dies.
                    self.regions[r.0 as usize].doomed = true;
                    self.stats.regions_deferred += 1;
                    return Ok(());
                }
            }
        }
        self.reclaim(r);
        Ok(())
    }

    /// Actually frees a region (preconditions: live, no children, no
    /// external references) and cascades to any doomed regions this
    /// release unblocks.
    fn reclaim(&mut self, r: RegionId) {
        let mut worklist = vec![r];
        while let Some(r) = worklist.pop() {
            if self.rc_enabled {
                self.unscan(r);
            }
            // Release pages and account for freed memory.
            let region = &mut self.regions[r.0 as usize];
            let mut freed = region.normal.release_all(&mut self.store);
            freed += region.pointerfree.release_all(&mut self.store);
            region.alive = false;
            region.doomed = false;
            let born_at = region.born_at;
            let parent = region.parent.take();
            if let Some(p) = parent {
                let kids = &mut self.regions[p.0 as usize].children;
                kids.retain(|&c| c != r);
                if self.reclaimable(p) {
                    worklist.push(p);
                }
            }
            self.stats.sub_live(freed);
            self.stats.regions_deleted += 1;
            if self.trace_on(mask::REGION_DELETED) {
                let lifetime_cycles = self.clock.cycles().saturating_sub(born_at);
                self.trace_emit(Event::RegionDeleted {
                    region: r.0,
                    live_words: freed,
                    lifetime_cycles,
                });
            }
            if self.span_on() {
                let now = self.clock.cycles();
                self.span_close(r.0, now, freed);
            }
            self.sample_tick();
            // The unscan may have released counts on other doomed regions.
            for i in 0..self.regions.len() {
                let cand = RegionId(i as u32);
                if self.reclaimable(cand) && !worklist.contains(&cand) {
                    worklist.push(cand);
                }
            }
        }
    }

    fn reclaimable(&self, r: RegionId) -> bool {
        let region = &self.regions[r.0 as usize];
        region.alive && region.doomed && region.children.is_empty() && region.rc == 0
    }

    /// Reclaims any doomed regions whose counts have reached zero; called
    /// after operations that decrement counts. No-op under
    /// [`DeletePolicy::Abort`].
    pub(crate) fn sweep_doomed(&mut self) {
        if self.delete_policy != DeletePolicy::Deferred {
            return;
        }
        for i in 0..self.regions.len() {
            let r = RegionId(i as u32);
            if self.reclaimable(r) {
                self.reclaim(r);
            }
        }
    }

    /// Removes the deleted region's counted references into other regions
    /// by scanning its `normal` pages; `pointerfree` pages "need not be
    /// scanned as they do not contain pointers to other regions".
    fn unscan(&mut self, r: RegionId) {
        let mut decrements: Vec<RegionId> = Vec::new();
        let mut scanned_words: u64 = 0;
        {
            let region = &self.regions[r.0 as usize];
            for rec in region.normal.objs() {
                let layout = self.types.get(rec.ty);
                let size = layout.size_words();
                scanned_words += (size as u64) * rec.count as u64;
                for elem in 0..rec.count as usize {
                    let base = rec.addr.offset(elem * size);
                    for off in layout.counted_ptr_offsets() {
                        let val = Addr::from_raw(self.store.read(base.offset(off)));
                        if !val.is_null() {
                            // A slot can only point at freed memory if the
                            // count invariant was already broken (rc off,
                            // or a prior fault); skip it rather than panic.
                            if let Some(tgt) = self.try_region_of(val) {
                                if tgt != r {
                                    decrements.push(tgt);
                                }
                            }
                        }
                    }
                }
            }
        }
        for tgt in decrements {
            self.regions[tgt.0 as usize].rc -= 1;
        }
        self.stats.unscan_words += scanned_words;
        let cycles = scanned_words * self.costs.unscan_per_word;
        self.stats.unscan_cycles += cycles;
        self.clock.charge(cycles);
    }

    /// `ralloc(r, type)`: allocates one object of `ty` in region `r`.
    ///
    /// # Errors
    ///
    /// Returns [`RtError::RegionDead`] for a deleted region or
    /// [`RtError::OutOfMemory`] if the page budget is exhausted.
    pub fn ralloc(&mut self, r: RegionId, ty: TypeId) -> Result<Addr, RtError> {
        self.rarray_alloc(r, ty, 1)
    }

    /// `rarrayalloc(r, n, type)`: allocates an array of `n` objects.
    ///
    /// # Errors
    ///
    /// As [`Heap::ralloc`].
    pub fn rarray_alloc(&mut self, r: RegionId, ty: TypeId, n: u32) -> Result<Addr, RtError> {
        self.check_live_region(r)?;
        self.fault_alloc_tick()?;
        debug_assert!(n >= 1);
        let layout = self.types.get(ty);
        let words = layout.size_words() * n as usize;
        let pointerfree = !layout.has_counted_ptrs();
        let site = self.trace_site;
        let region = &mut self.regions[r.0 as usize];
        let alloc = if pointerfree { &mut region.pointerfree } else { &mut region.normal };
        let out = match alloc.alloc(&mut self.store, PageOwner::Region(r), words, ty, n, site) {
            Ok(out) => out,
            Err(e) => return Err(self.fault_stamp_oom(e)),
        };
        let cycles = self.costs.region_alloc
            + out.new_pages as u64 * self.costs.page_fetch
            + out.recycled_pages as u64 * self.costs.page_recycle;
        self.stats.alloc_cycles += cycles;
        self.clock.charge(cycles);
        self.stats.objects_allocated += 1;
        self.stats.words_allocated += words as u64;
        self.stats.add_live(words as u64);
        if self.trace_on(mask::ALLOC) {
            let ev = Event::Alloc { region: r.0, site: self.trace_site, words: words as u32 };
            self.trace_emit(ev);
        }
        if self.span_on() {
            self.span_note_alloc(r.0, words as u32);
        }
        self.sample_tick();
        Ok(out.addr)
    }

    /// `regionof(x)`: the region owning the page `x` points into. Pages of
    /// the malloc and GC heaps report the traditional region, exactly as in
    /// the paper ("traditional C pointers are viewed as pointers to a
    /// distinguished traditional region").
    ///
    /// # Errors
    ///
    /// Returns [`RtError::WildPointer`] for the null pointer or a pointer
    /// into freed memory — a defined failure, never a crash, since the
    /// argument can come straight from interpreted program input.
    #[inline]
    pub fn region_of(&self, a: Addr) -> Result<RegionId, RtError> {
        self.try_region_of(a).ok_or(RtError::WildPointer { addr: a })
    }

    /// As [`Heap::region_of`] but returns `None` for null or freed memory.
    #[inline]
    pub fn try_region_of(&self, a: Addr) -> Option<RegionId> {
        if a.is_null() {
            return None;
        }
        match self.store.owner_of(a) {
            PageOwner::Region(r) => Some(r),
            PageOwner::Gc => Some(TRADITIONAL),
            PageOwner::Free => None,
        }
    }

    /// Reads the word at field offset `field` of the object at `a`.
    ///
    /// # Errors
    ///
    /// Returns [`RtError::WildPointer`] if the address is null or not in
    /// live memory.
    #[inline]
    pub fn read_word(&self, a: Addr, field: usize) -> Result<u64, RtError> {
        let slot = a.offset(field);
        if !self.store.is_live(slot) {
            return Err(RtError::WildPointer { addr: slot });
        }
        Ok(self.store.read(slot))
    }

    /// Writes a non-pointer word; never touches reference counts.
    ///
    /// # Errors
    ///
    /// Returns [`RtError::WildPointer`] for a bad address.
    #[inline]
    pub fn write_int(&mut self, a: Addr, field: usize, val: u64) -> Result<(), RtError> {
        let slot = a.offset(field);
        if !self.store.is_live(slot) {
            return Err(RtError::WildPointer { addr: slot });
        }
        self.store.write(slot, val);
        self.clock.charge(self.costs.store_plain);
        Ok(())
    }

    /// Pins a region on behalf of a live local variable around a call to a
    /// `deletes` function ("RC increments the reference count of all regions
    /// referred to by live local variables and decrements these reference
    /// counts on return", §3.3.2). Each pin must be matched by
    /// [`Heap::unpin_region`].
    pub fn pin_region(&mut self, r: RegionId) {
        if !self.rc_enabled || r == TRADITIONAL {
            return;
        }
        let costs_pin = self.costs.local_pin_pair;
        let region = self.region_mut(r);
        if !region.alive {
            return; // stale handle in a dead local; nothing to protect
        }
        region.rc += 1;
        region.pins += 1;
        self.stats.local_pins += 1;
        self.stats.rc_cycles += costs_pin;
        self.clock.charge(costs_pin);
    }

    /// Releases a pin taken by [`Heap::pin_region`].
    pub fn unpin_region(&mut self, r: RegionId) {
        if !self.rc_enabled || r == TRADITIONAL {
            return;
        }
        let region = self.region_mut(r);
        if !region.alive {
            return;
        }
        region.rc -= 1;
        region.pins -= 1;
        self.sweep_doomed();
    }

    /// The reference count of a region (for tests and the auditor).
    pub fn region_rc(&self, r: RegionId) -> i64 {
        self.region(r).rc
    }

    /// Whether a region is live.
    pub fn region_alive(&self, r: RegionId) -> bool {
        self.region(r).alive
    }

    /// The parent of a region (None for the traditional region).
    pub fn region_parent(&self, r: RegionId) -> Option<RegionId> {
        self.region(r).parent
    }

    /// Number of regions ever created (including the traditional region).
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// Words currently in use by live regions' allocators.
    pub fn region_live_words(&self) -> u64 {
        self.regions
            .iter()
            .filter(|r| r.alive)
            .map(|r| r.normal.used_words() + r.pointerfree.used_words())
            .sum()
    }

    /// Resets every metric — all [`Stats`] counters including the cycle
    /// accumulators, the virtual clock, the attribution site, and any
    /// attached tracer (its mask and ring capacity are preserved; its ring
    /// and folded profile start over). The heap contents are untouched;
    /// used by harnesses that want to measure a steady-state phase.
    pub fn reset_metrics(&mut self) {
        self.stats = Stats::new();
        self.clock.reset();
        self.trace_site = 0;
        if let Some(t) = self.tracer.as_ref() {
            let (mask, capacity) = (t.mask(), t.capacity());
            self.tracer = Some(Box::new(Tracer::new(mask, capacity)));
        }
        if let Some(tl) = self.timeline.as_mut() {
            // Samples start over at the configured interval; the sampler
            // itself stays attached.
            tl.reset();
            self.sample_countdown = tl.interval();
        }
        // Region birth stamps follow the clock back to zero so post-reset
        // lifetimes (trace and spans alike) measure from the reset point.
        for rd in &mut self.regions {
            rd.born_at = 0;
        }
        if let Some(t) = self.span_tree.as_ref() {
            // Spans restart with the clock: regions still live reopen at
            // time 0 (their note bound is preserved).
            let cap = t.note_cap();
            self.span_tree =
                Some(Box::new(crate::span::SpanTree::seeded(cap, &self.regions)));
        }
    }

    // ---- timeline sampling ------------------------------------------------

    /// Attaches a [`Timeline`] sampler that snapshots the heap every
    /// `interval` runtime events, retaining at most `cap` samples (older
    /// samples are decimated). Under `--no-default-features` this is a
    /// no-op and no timeline is ever attached.
    pub fn enable_sampling(&mut self, interval: u64, cap: usize) {
        #[cfg(feature = "telemetry")]
        {
            let tl = Timeline::new(interval, cap);
            self.sample_countdown = tl.interval();
            self.timeline = Some(Box::new(tl));
        }
        #[cfg(not(feature = "telemetry"))]
        {
            let _ = (interval, cap);
        }
    }

    /// Detaches and returns the timeline, disabling further sampling.
    pub fn take_timeline(&mut self) -> Option<Box<Timeline>> {
        self.sample_countdown = 0;
        self.timeline.take()
    }

    /// The attached timeline, if sampling is enabled.
    pub fn timeline(&self) -> Option<&Timeline> {
        self.timeline.as_deref()
    }

    /// Whether a timeline sampler is attached.
    pub fn sampling_enabled(&self) -> bool {
        self.timeline.is_some()
    }

    /// One sampling tick. Every instrumented runtime event (allocation,
    /// count update, check, free, collection, interpreter step) calls
    /// this; with sampling disabled it is a single compare against zero,
    /// and without the `telemetry` feature it compiles to nothing.
    #[inline(always)]
    pub fn sample_tick(&mut self) {
        #[cfg(feature = "telemetry")]
        {
            if self.sample_countdown != 0 {
                self.sample_countdown -= 1;
                if self.sample_countdown == 0 {
                    self.sample_take();
                }
            }
        }
    }

    /// Takes an immediate snapshot regardless of the tick countdown (used
    /// for the final sample at end of run). No-op when sampling is off.
    pub fn sample_now(&mut self) {
        #[cfg(feature = "telemetry")]
        {
            if let Some(tl) = self.timeline.as_mut() {
                // Account the ticks consumed from the current window.
                let consumed = tl.interval() - self.sample_countdown.min(tl.interval());
                tl.note_ticks(consumed);
                self.sample_push();
            }
        }
    }

    /// The scheduled (countdown-expired) sample: a full window of ticks
    /// elapsed.
    #[cfg(feature = "telemetry")]
    #[cold]
    fn sample_take(&mut self) {
        if let Some(tl) = self.timeline.as_mut() {
            let window = tl.interval();
            tl.note_ticks(window);
        }
        self.sample_push();
    }

    #[cfg(feature = "telemetry")]
    fn sample_push(&mut self) {
        let gauges = self.gauges();
        let cycles = self.clock.cycles();
        let site = self.trace_site;
        if let Some(tl) = self.timeline.as_mut() {
            tl.push(gauges, &self.stats, cycles, site);
            // Decimation may have doubled the interval; reschedule from it.
            self.sample_countdown = tl.interval();
            // Surface lost resolution in the run's counters (assignment,
            // not +=: both reset together via reset_metrics).
            self.stats.samples_dropped = tl.samples_dropped();
        }
    }

    /// Point-in-time structural gauges: page-map usage, per-page occupancy
    /// of live regions' allocators, and malloc free-list depth. This is
    /// what timeline samples record; it is public so tests can cross-check
    /// snapshots against the page map directly.
    pub fn gauges(&self) -> HeapGauges {
        let mut g = HeapGauges {
            live_regions: 0,
            pages_committed: self.store.pages_committed() as u32,
            pages_in_use: self.store.pages_in_use() as u32,
            pages_free: self.store.pages_free() as u32,
            region_pages: 0,
            occupancy: [0; crate::timeline::OCCUPANCY_BUCKETS],
            malloc_free_depth: self.malloc.free_list_depth() as u32,
        };
        for (idx, region) in self.regions.iter().enumerate() {
            if !region.alive {
                continue;
            }
            g.live_regions += 1;
            if RegionId(idx as u32) == TRADITIONAL {
                // The traditional region's footprint is the malloc/GC
                // heaps' domain; region_pages covers real regions only, so
                // it can be checked against the page map (malloc pages are
                // also mapped to the traditional region).
                continue;
            }
            for alloc in [&region.normal, &region.pointerfree] {
                g.region_pages += alloc.page_count() as u32;
                for &used in alloc.page_fill() {
                    g.occupancy[occupancy_bucket(used, WORDS_PER_PAGE as u32)] += 1;
                }
            }
        }
        g
    }

    /// Ground truth for [`HeapGauges::region_pages`], from the other side:
    /// pages the page map assigns to non-traditional regions. Only the
    /// bump allocators acquire pages with such owners, so this must always
    /// equal the allocator-side count.
    pub fn mapped_region_pages(&self) -> u32 {
        let mut n = 0;
        for p in 0..self.store.page_count() as u32 {
            if let PageOwner::Region(r) = self.store.owner(p) {
                if r != TRADITIONAL {
                    n += 1;
                }
            }
        }
        n
    }

    // ---- fault injection --------------------------------------------------

    /// Installs a fault-injection plan: one [`FaultArm`] per armed plane.
    /// Replaces any previously installed arms; an empty plan disarms
    /// everything. See `docs/ROBUSTNESS.md`.
    pub fn install_faults(&mut self, plan: &FaultPlan) {
        let arm = |plane: FaultPlane, mode: &Option<FaultMode>| {
            mode.clone().map(|m| Box::new(FaultArm::new(plane, m, plan.sticky)))
        };
        self.store.set_fault_arm(arm(FaultPlane::PageAcquire, &plan.page_acquire));
        self.fault_alloc = arm(FaultPlane::Alloc, &plan.alloc);
        self.fault_rc = arm(FaultPlane::RcSaturate, &plan.rc_saturate);
        self.fault_check = arm(FaultPlane::CheckFail, &plan.check_fail);
    }

    /// Whether any fault plane is currently armed.
    pub fn faults_enabled(&self) -> bool {
        self.fault_alloc.is_some()
            || self.fault_rc.is_some()
            || self.fault_check.is_some()
            || self.store.fault_armed()
    }

    /// Detaches every fault arm and returns the harvested report (`None`
    /// if nothing was armed). Recovery code runs after this, so the unwind
    /// itself is never subject to injection; any page-plane injections
    /// still pending a clock stamp are stamped with the current time.
    pub fn take_faults(&mut self) -> Option<FaultReport> {
        self.store.stamp_fault(self.clock.cycles());
        let page_arm = self.store.take_fault_arm();
        if let Some(arm) = page_arm.as_ref() {
            // The page store fires below the heap layer, so its
            // injections reach stats/trace/spans at harvest, with their
            // back-filled stamps (the heap-level planes record at
            // tick time in their slow paths).
            let injected: Vec<crate::fault::InjectedFault> = arm.injected().to_vec();
            for f in injected {
                self.note_fault_injected(f.plane, f.op, f.at);
            }
        }
        let arms: Vec<FaultArm> = [
            page_arm,
            self.fault_alloc.take(),
            self.fault_rc.take(),
            self.fault_check.take(),
        ]
        .into_iter()
        .flatten()
        .map(|b| *b)
        .collect();
        if arms.is_empty() {
            None
        } else {
            Some(FaultReport::from_arms(arms))
        }
    }

    /// One allocation-plane tick (shared by `rarrayalloc`, `malloc`, and
    /// GC allocation, so "the Nth allocation" is backend-independent).
    /// Disabled: a single branch.
    #[inline(always)]
    pub(crate) fn fault_alloc_tick(&mut self) -> Result<(), RtError> {
        if self.fault_alloc.is_none() {
            return Ok(());
        }
        self.fault_alloc_slow()
    }

    fn fault_alloc_slow(&mut self) -> Result<(), RtError> {
        let at = self.clock.cycles();
        if self.fault_alloc.as_mut().is_some_and(|arm| arm.tick(at)) {
            let op = self.fault_alloc.as_ref().map_or(0, |a| a.ops());
            self.note_fault_injected(FaultPlane::Alloc, op, at);
            return Err(RtError::OutOfMemory);
        }
        Ok(())
    }

    /// One rc-plane tick, taken by `write_counted` *before* any count or
    /// slot is mutated, so an injected [`RtError::RcOverflow`] leaves the
    /// heap audit-clean. Disabled: a single branch.
    #[inline(always)]
    pub(crate) fn fault_rc_tick(&mut self, obj: Addr, val: Addr) -> Result<(), RtError> {
        if self.fault_rc.is_none() {
            return Ok(());
        }
        self.fault_rc_slow(obj, val)
    }

    fn fault_rc_slow(&mut self, obj: Addr, val: Addr) -> Result<(), RtError> {
        let at = self.clock.cycles();
        let fired = self.fault_rc.as_mut().is_some_and(|arm| arm.tick(at));
        if fired {
            let op = self.fault_rc.as_ref().map_or(0, |a| a.ops());
            self.note_fault_injected(FaultPlane::RcSaturate, op, at);
            // Name the region whose count would have been raised.
            let region = self
                .try_region_of(val)
                .or_else(|| self.try_region_of(obj))
                .unwrap_or(TRADITIONAL);
            return Err(RtError::RcOverflow { region });
        }
        Ok(())
    }

    /// One check-plane tick; returns whether the annotation check must be
    /// forced to fail. Disabled: a single branch.
    #[inline(always)]
    pub(crate) fn fault_check_tick(&mut self) -> bool {
        if self.fault_check.is_none() {
            return false;
        }
        self.fault_check_slow()
    }

    fn fault_check_slow(&mut self) -> bool {
        let at = self.clock.cycles();
        let fired = self.fault_check.as_mut().is_some_and(|arm| arm.tick(at));
        if fired {
            let op = self.fault_check.as_ref().map_or(0, |a| a.ops());
            self.note_fault_injected(FaultPlane::CheckFail, op, at);
        }
        fired
    }

    /// Back-fills the virtual-clock stamp on page-plane injections when an
    /// out-of-memory error surfaces at a heap entry point (the page store
    /// fires below the clock, see [`crate::fault::STAMP_PENDING`]).
    #[cold]
    pub(crate) fn fault_stamp_oom(&mut self, e: RtError) -> RtError {
        if e == RtError::OutOfMemory {
            self.store.stamp_fault(self.clock.cycles());
        }
        e
    }

    // ---- fault recovery ---------------------------------------------------

    /// Emergency region-stack teardown after a trapped fault.
    ///
    /// First nulls every counted pointer slot held by live regions' normal
    /// objects and by live malloc objects, decrementing the target region's
    /// count for each live cross-region pointer exactly as a counted NULL
    /// store would — but free of cost-model charges, since recovery is not
    /// program work. Then repeatedly deletes leaf regions (clearing pins
    /// and doom flags, which belonged to the unwound program) until only
    /// the traditional region survives. The heap is audit-clean afterwards.
    /// Returns the number of regions deleted.
    pub fn unwind_regions(&mut self) -> usize {
        for idx in 0..self.regions.len() {
            if !self.regions[idx].alive {
                continue;
            }
            let r = RegionId(idx as u32);
            let slots = self.counted_slots_of_region(r);
            self.null_counted_slots(r, &slots);
        }
        let mut slots = Vec::new();
        for (addr, obj) in self.malloc.live_objects() {
            let layout = self.types.get(obj.ty);
            let size = layout.size_words();
            for elem in 0..obj.count as usize {
                let base = addr.offset(elem * size);
                for off in layout.counted_ptr_offsets() {
                    slots.push(base.offset(off));
                }
            }
        }
        self.null_counted_slots(TRADITIONAL, &slots);
        let live_before = self.regions.iter().filter(|d| d.alive).count();
        loop {
            let leaf = (1..self.regions.len()).map(|i| RegionId(i as u32)).find(|&r| {
                let d = &self.regions[r.0 as usize];
                d.alive && d.children.is_empty()
            });
            let Some(r) = leaf else { break };
            {
                let d = &mut self.regions[r.0 as usize];
                d.rc = 0;
                d.pins = 0;
                d.doomed = false;
            }
            if self.delete_region(r).is_err() {
                break; // unreachable (leaf, rc 0), but never loop forever
            }
        }
        live_before - self.regions.iter().filter(|d| d.alive).count()
    }

    /// Word addresses of every counted pointer slot in a region's normal
    /// objects (its pointer-free allocator holds none by construction).
    fn counted_slots_of_region(&self, r: RegionId) -> Vec<Addr> {
        let mut slots = Vec::new();
        let region = &self.regions[r.0 as usize];
        for rec in region.normal.objs() {
            let layout = self.types.get(rec.ty);
            let size = layout.size_words();
            for elem in 0..rec.count as usize {
                let base = rec.addr.offset(elem * size);
                for off in layout.counted_ptr_offsets() {
                    slots.push(base.offset(off));
                }
            }
        }
        slots
    }

    /// Nulls counted slots owned by `r`, maintaining cross-region counts.
    fn null_counted_slots(&mut self, r: RegionId, slots: &[Addr]) {
        for &slot in slots {
            let val = Addr::from_raw(self.store.read(slot));
            if val.is_null() {
                continue;
            }
            if self.rc_enabled {
                if let Some(tgt) = self.try_region_of(val) {
                    if tgt != r {
                        self.regions[tgt.0 as usize].rc -= 1;
                    }
                }
            }
            self.store.write(slot, 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{PtrKind, SlotKind};

    fn list_type(heap: &mut Heap, kind: PtrKind) -> TypeId {
        heap.register_type(TypeLayout::new(
            "node",
            vec![SlotKind::Ptr(kind), SlotKind::Data],
        ))
    }

    #[test]
    fn alloc_and_regionof() {
        let mut h = Heap::with_defaults();
        let ty = list_type(&mut h, PtrKind::Counted);
        let r = h.new_region();
        let a = h.ralloc(r, ty).unwrap();
        assert_eq!(h.region_of(a), Ok(r));
        assert!(!a.is_null());
        assert_eq!(h.region_of(Addr::NULL), Err(RtError::WildPointer { addr: Addr::NULL }));
    }

    #[test]
    fn pointerfree_and_normal_segregation() {
        let mut h = Heap::with_defaults();
        let counted = list_type(&mut h, PtrKind::Counted);
        let annotated = list_type(&mut h, PtrKind::SameRegion);
        let r = h.new_region();
        let a = h.ralloc(r, counted).unwrap();
        let b = h.ralloc(r, annotated).unwrap();
        // Different allocators → different pages.
        assert_ne!(a.page(), b.page());
        let rd = &h.regions[r.0 as usize];
        assert_eq!(rd.normal.objs().len(), 1);
        assert_eq!(rd.pointerfree.objs().len(), 1);
    }

    #[test]
    fn delete_empty_region() {
        let mut h = Heap::with_defaults();
        let r = h.new_region();
        assert!(h.region_alive(r));
        h.delete_region(r).unwrap();
        assert!(!h.region_alive(r));
        assert_eq!(h.delete_region(r), Err(RtError::RegionDead { region: r }));
    }

    #[test]
    fn traditional_cannot_be_deleted() {
        let mut h = Heap::with_defaults();
        assert_eq!(h.delete_region(TRADITIONAL), Err(RtError::TraditionalImmortal));
    }

    #[test]
    fn subregions_must_go_first() {
        let mut h = Heap::with_defaults();
        let r = h.new_region();
        let s = h.new_subregion(r).unwrap();
        assert_eq!(h.delete_region(r), Err(RtError::DeleteWithSubregions { region: r }));
        h.delete_region(s).unwrap();
        h.delete_region(r).unwrap();
    }

    #[test]
    fn alloc_into_dead_region_fails() {
        let mut h = Heap::with_defaults();
        let ty = list_type(&mut h, PtrKind::Counted);
        let r = h.new_region();
        h.delete_region(r).unwrap();
        assert_eq!(h.ralloc(r, ty), Err(RtError::RegionDead { region: r }));
        assert!(h.new_subregion(r).is_err());
    }

    #[test]
    fn live_words_tracks_alloc_and_delete() {
        let mut h = Heap::with_defaults();
        let ty = list_type(&mut h, PtrKind::Counted);
        let r = h.new_region();
        h.rarray_alloc(r, ty, 10).unwrap();
        assert_eq!(h.stats.live_words, 20);
        assert_eq!(h.region_live_words(), 20);
        h.delete_region(r).unwrap();
        assert_eq!(h.stats.live_words, 0);
    }

    #[test]
    fn pin_blocks_delete() {
        let mut h = Heap::with_defaults();
        let r = h.new_region();
        h.pin_region(r);
        assert!(matches!(h.delete_region(r), Err(RtError::DeleteWithLiveRefs { .. })));
        h.unpin_region(r);
        h.delete_region(r).unwrap();
    }

    #[test]
    fn read_write_int_round_trip() {
        let mut h = Heap::with_defaults();
        let ty = list_type(&mut h, PtrKind::Counted);
        let r = h.new_region();
        let a = h.ralloc(r, ty).unwrap();
        h.write_int(a, 1, 99).unwrap();
        assert_eq!(h.read_word(a, 1).unwrap(), 99);
    }

    #[test]
    fn reset_metrics_zeroes_every_counter() {
        use crate::rcops::WriteMode;
        let mut h = Heap::with_defaults();
        h.enable_tracing(crate::trace::mask::ALL, 64);
        let counted = list_type(&mut h, PtrKind::Counted);
        let checked = list_type(&mut h, PtrKind::SameRegion);
        // Exercise every accumulator: regions, allocs, counted and checked
        // stores, malloc/free, GC, unscan, pins.
        let r1 = h.new_region();
        let r2 = h.new_subregion(r1).unwrap();
        let a = h.ralloc(r1, counted).unwrap();
        let b = h.ralloc(r2, counted).unwrap();
        h.write_ptr(a, 0, b, WriteMode::Counted).unwrap();
        h.write_ptr(a, 0, Addr::NULL, WriteMode::Counted).unwrap();
        let c = h.ralloc(r1, checked).unwrap();
        h.write_ptr(c, 0, c, WriteMode::Check(PtrKind::SameRegion)).unwrap();
        h.write_ptr(c, 0, c, WriteMode::Safe).unwrap();
        h.write_ptr(c, 0, c, WriteMode::Raw).unwrap();
        h.write_int(c, 1, 3).unwrap();
        let m = h.m_alloc(counted, 1).unwrap();
        h.m_free(m).unwrap();
        h.gc_alloc(counted, 1).unwrap();
        h.gc_collect(&[]);
        h.pin_region(r1);
        h.unpin_region(r1);
        h.delete_region(r2).unwrap();
        h.delete_region(r1).unwrap();
        assert_ne!(h.stats, Stats::new(), "the workout touched the stats");
        assert!(h.clock.cycles() > 0);
        // Events only record when the telemetry feature compiled them in.
        #[cfg(feature = "telemetry")]
        assert!(h.tracer().unwrap().recorded() > 0);

        h.reset_metrics();
        // Every counter — including the cycle accumulators rc_cycles,
        // check_cycles, unscan_cycles, alloc_cycles, gc_cycles and the
        // live/peak gauges — reads as a fresh Stats.
        assert_eq!(h.stats, Stats::new());
        assert_eq!(h.clock.cycles(), 0);
        let t = h.tracer().expect("tracer survives reset");
        assert_eq!(t.recorded(), 0);
        assert_eq!(t.profile().totals, crate::profile::ProfileTotals::default());
        assert_eq!(t.mask(), crate::trace::mask::ALL, "mask preserved");
    }

    /// A fixed workout touching regions, malloc, and GC, identical across
    /// sampled and unsampled heaps.
    fn workout(h: &mut Heap) {
        use crate::rcops::WriteMode;
        let counted = h.register_type(TypeLayout::new(
            "node",
            vec![SlotKind::Ptr(PtrKind::Counted), SlotKind::Data],
        ));
        let r1 = h.new_region();
        let r2 = h.new_subregion(r1).unwrap();
        for _ in 0..40 {
            let a = h.ralloc(r1, counted).unwrap();
            let b = h.ralloc(r2, counted).unwrap();
            h.write_ptr(a, 0, b, WriteMode::Counted).unwrap();
            h.write_ptr(a, 0, Addr::NULL, WriteMode::Counted).unwrap();
        }
        let m = h.m_alloc(counted, 3).unwrap();
        h.m_free(m).unwrap();
        h.gc_alloc(counted, 2).unwrap();
        h.gc_collect(&[]);
        h.delete_region(r2).unwrap();
        h.delete_region(r1).unwrap();
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn sampling_is_observation_only() {
        let mut plain = Heap::with_defaults();
        workout(&mut plain);
        let mut sampled = Heap::with_defaults();
        sampled.enable_sampling(8, 64);
        workout(&mut sampled);
        // Same counters, same virtual time: the sampler never perturbs the
        // run it observes.
        assert_eq!(plain.stats, sampled.stats);
        assert_eq!(plain.clock.cycles(), sampled.clock.cycles());
        let tl = sampled.take_timeline().expect("sampler attached");
        assert!(tl.len() > 3, "periodic samples were taken: {}", tl.len());
        let last = tl.samples().last().unwrap();
        assert_eq!(last.gauges.pages_in_use as usize, sampled.store.pages_in_use());
        assert_eq!(
            last.gauges.pages_committed,
            last.gauges.pages_in_use + last.gauges.pages_free,
            "committed pages partition into in-use and free"
        );
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn sample_now_takes_forced_snapshot_and_tracks_gauges() {
        let mut h = Heap::with_defaults();
        h.enable_sampling(1_000_000, 64); // countdown will never expire
        let ty = list_type(&mut h, PtrKind::Counted);
        let r = h.new_region();
        h.rarray_alloc(r, ty, 100).unwrap();
        h.sample_now();
        let tl = h.timeline().unwrap();
        assert_eq!(tl.len(), 1);
        let s = &tl.samples()[0];
        assert_eq!(s.live_words, 200);
        assert_eq!(s.gauges.region_pages, h.mapped_region_pages());
        assert!(s.gauges.live_regions >= 2);
        assert_eq!(s.d_allocs, 1);
        // A second forced sample sees only the delta.
        h.rarray_alloc(r, ty, 1).unwrap();
        h.sample_now();
        let tl = h.timeline().unwrap();
        assert_eq!(tl.samples()[1].d_allocs, 1);
        assert_eq!(tl.samples()[1].d_alloc_words, 2);
    }

    #[test]
    fn sampling_api_is_safe_whether_or_not_the_feature_is_on() {
        let mut h = Heap::with_defaults();
        assert!(!h.sampling_enabled());
        h.sample_tick(); // no-ops before enable_sampling
        h.sample_now();
        h.enable_sampling(4, 16);
        assert_eq!(h.sampling_enabled(), cfg!(feature = "telemetry"));
        h.sample_now();
        let tl = h.take_timeline();
        assert_eq!(tl.is_some(), cfg!(feature = "telemetry"));
        assert!(!h.sampling_enabled());
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn reset_metrics_restarts_the_timeline() {
        let mut h = Heap::with_defaults();
        h.enable_sampling(2, 16);
        let ty = list_type(&mut h, PtrKind::Counted);
        let r = h.new_region();
        for _ in 0..10 {
            h.ralloc(r, ty).unwrap();
        }
        assert!(!h.timeline().unwrap().is_empty());
        h.reset_metrics();
        let tl = h.timeline().expect("sampler survives reset");
        assert!(tl.is_empty());
        assert_eq!(tl.interval(), 2);
        assert_eq!(tl.ticks(), 0);
    }

    #[test]
    fn wild_pointer_detected() {
        let h = Heap::with_defaults();
        assert!(matches!(
            h.read_word(Addr::from_parts(500, 0), 0),
            Err(RtError::WildPointer { .. })
        ));
        assert!(matches!(h.read_word(Addr::NULL, 0), Err(RtError::WildPointer { .. })));
    }

    #[test]
    fn alloc_fault_plane_counts_across_all_backends() {
        use crate::fault::{FaultMode, FaultPlan};
        let mut h = Heap::with_defaults();
        let ty = list_type(&mut h, PtrKind::Counted);
        let r = h.new_region();
        // The 4th allocation fails, wherever it lands: the shared counter
        // makes "the Nth allocation" backend-independent.
        h.install_faults(&FaultPlan::new().fail_alloc(FaultMode::nth(4)).sticky());
        assert!(h.ralloc(r, ty).is_ok());
        assert!(h.m_alloc(ty, 1).is_ok());
        assert!(h.gc_alloc(ty, 1).is_ok());
        assert_eq!(h.ralloc(r, ty), Err(RtError::OutOfMemory));
        // Sticky: every later allocation keeps failing, on every backend.
        assert_eq!(h.m_alloc(ty, 1), Err(RtError::OutOfMemory));
        assert_eq!(h.gc_alloc(ty, 2), Err(RtError::OutOfMemory));
        h.audit().unwrap();
        let report = h.take_faults().expect("arms were installed");
        assert_eq!(report.arms.len(), 1);
        assert_eq!(report.arms[0].ops, 6);
        assert_eq!(report.arms[0].injected.len(), 3);
        assert_eq!(report.first().map(|f| f.op), Some(4));
        assert!(!h.faults_enabled(), "take_faults disarms everything");
        assert!(h.ralloc(r, ty).is_ok(), "disarmed heap allocates again");
    }

    #[test]
    fn rc_fault_fails_store_without_corrupting_counts() {
        use crate::fault::{FaultMode, FaultPlan};
        use crate::rcops::WriteMode;
        let mut h = Heap::with_defaults();
        let ty = list_type(&mut h, PtrKind::Counted);
        let (r1, r2) = (h.new_region(), h.new_region());
        let a = h.ralloc(r1, ty).unwrap();
        let b = h.ralloc(r2, ty).unwrap();
        h.install_faults(&FaultPlan::new().saturate_rc(FaultMode::nth(2)));
        h.write_ptr(a, 0, b, WriteMode::Counted).unwrap();
        assert_eq!(h.region_rc(r2), 1);
        // The injected failure names the target region and mutates nothing:
        // the old pointer is still in place, the counts still agree.
        assert_eq!(
            h.write_ptr(a, 0, Addr::NULL, WriteMode::Counted),
            Err(RtError::RcOverflow { region: r1 })
        );
        assert_eq!(h.region_rc(r2), 1);
        assert_eq!(h.read_ptr(a, 0).unwrap(), b);
        h.audit().unwrap();
        // Non-sticky: the next update goes through.
        h.write_ptr(a, 0, Addr::NULL, WriteMode::Counted).unwrap();
        assert_eq!(h.region_rc(r2), 0);
        h.audit().unwrap();
    }

    #[test]
    fn check_fault_forces_a_failure_and_suppresses_the_store() {
        use crate::fault::{FaultMode, FaultPlan};
        use crate::rcops::WriteMode;
        let mut h = Heap::with_defaults();
        let ty = list_type(&mut h, PtrKind::SameRegion);
        let r = h.new_region();
        let a = h.ralloc(r, ty).unwrap();
        let b = h.ralloc(r, ty).unwrap();
        h.install_faults(&FaultPlan::new().fail_checks(FaultMode::nth(1)));
        // A store that would legitimately pass is forced to fail.
        assert!(matches!(
            h.write_ptr(a, 0, b, WriteMode::Check(PtrKind::SameRegion)),
            Err(RtError::CheckFailed { kind: PtrKind::SameRegion, .. })
        ));
        assert!(h.read_ptr(a, 0).unwrap().is_null(), "failed check stores nothing");
        assert_eq!(h.stats.checks_sameregion, 1, "the check was still counted");
        h.write_ptr(a, 0, b, WriteMode::Check(PtrKind::SameRegion)).unwrap();
        h.audit().unwrap();
    }

    #[test]
    fn unwind_regions_clears_a_tangled_heap_audit_clean() {
        use crate::rcops::WriteMode;
        let mut h = Heap::with_defaults();
        let ty = list_type(&mut h, PtrKind::Counted);
        let r1 = h.new_region();
        let r2 = h.new_subregion(r1).unwrap();
        let r3 = h.new_subregion(r2).unwrap();
        let a = h.ralloc(r1, ty).unwrap();
        let b = h.ralloc(r2, ty).unwrap();
        let c = h.ralloc(r3, ty).unwrap();
        let g = h.m_alloc(ty, 1).unwrap();
        // Cross-region and malloc→region references, plus a pin: exactly
        // the state a program traps in mid-flight.
        h.write_ptr(a, 0, b, WriteMode::Counted).unwrap();
        h.write_ptr(b, 0, c, WriteMode::Counted).unwrap();
        h.write_ptr(g, 0, c, WriteMode::Counted).unwrap();
        h.pin_region(r2);
        assert!(h.delete_region(r1).is_err(), "normal deletion is blocked");
        let deleted = h.unwind_regions();
        assert_eq!(deleted, 3);
        for r in [r1, r2, r3] {
            assert!(!h.region_alive(r));
        }
        assert!(h.region_alive(TRADITIONAL));
        assert!(h.read_ptr(g, 0).unwrap().is_null(), "malloc slots were nulled");
        h.audit().unwrap();
        // The heap still works: fresh regions allocate and delete normally.
        let r = h.new_region();
        h.ralloc(r, ty).unwrap();
        h.delete_region(r).unwrap();
        h.audit().unwrap();
    }

    #[test]
    fn unwind_regions_on_a_clean_heap_is_a_noop() {
        let mut h = Heap::with_defaults();
        assert_eq!(h.unwind_regions(), 0);
        h.audit().unwrap();
    }
}
