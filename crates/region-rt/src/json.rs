//! A minimal JSON document model, serializer, and parser.
//!
//! The build environment is offline and the workspace carries no external
//! crates, so the telemetry JSONL export, the bench-harness artifact dumps,
//! and the `bench-diff` regression gate share this hand-rolled
//! implementation instead of `serde_json`. The parser exists so the bench
//! trajectory (`BENCH_rc.json`) can be read back and diffed; it is a plain
//! recursive-descent RFC 8259 reader with byte offsets in its errors.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (the common case for counters).
    U(u64),
    /// A signed integer.
    I(i64),
    /// A float; non-finite values serialize as `null` per RFC 8259.
    F(f64),
    /// A string.
    S(String),
    /// An array.
    A(Vec<Json>),
    /// An object with insertion-ordered keys.
    O(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for an object.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::O(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Convenience constructor for a string value.
    pub fn s(v: impl Into<String>) -> Json {
        Json::S(v.into())
    }

    /// Serializes to a compact single-line string (JSONL-friendly).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Serializes with two-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    /// Parses a JSON document (one value with only whitespace around it).
    ///
    /// Numbers parse as [`Json::U`] when they are non-negative integers
    /// that fit `u64`, as [`Json::I`] for other in-range integers, and as
    /// [`Json::F`] otherwise — mirroring how the serializer writes them.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonParseError`] with the byte offset of the problem.
    pub fn parse(text: &str) -> Result<Json, JsonParseError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    /// Looks up a key in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::O(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U(n) => Some(*n),
            Json::I(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as an `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::U(n) => Some(*n as f64),
            Json::I(n) => Some(*n as f64),
            Json::F(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::S(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::A(items) => Some(items),
            _ => None,
        }
    }

    /// The value as ordered key/value pairs, if it is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::O(fields) => Some(fields),
            _ => None,
        }
    }

    /// The value as a bool, if it is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U(n) => {
                let _ = write!(out, "{n}");
            }
            Json::I(n) => {
                let _ = write!(out, "{n}");
            }
            Json::F(f) => write_f64(out, *f),
            Json::S(s) => write_str(out, s),
            Json::A(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::O(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::A(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::O(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_f64(out: &mut String, f: f64) {
    if f.is_finite() {
        // Integral floats keep a trailing `.0` so the value round-trips as
        // a float in typed consumers.
        if f == f.trunc() && f.abs() < 1e15 {
            let _ = write!(out, "{f:.1}");
        } else {
            let _ = write!(out, "{f}");
        }
    } else {
        out.push_str("null");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: what went wrong and the byte offset where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset into the input.
    pub offset: usize,
    /// Human-readable description.
    pub msg: String,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for JsonParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonParseError {
        JsonParseError { offset: self.pos, msg: msg.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::S),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::A(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::A(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::O(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::O(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?;
                out.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self) -> Result<char, JsonParseError> {
        let c = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        Ok(match c {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{8}',
            b'f' => '\u{c}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // A surrogate pair: expect the low half immediately.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect(b'u')?;
                        let lo = self.hex4()?;
                        0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00) & 0x3FF)
                    } else {
                        return Err(self.err("lone high surrogate"));
                    }
                } else {
                    hi
                };
                char::from_u32(code).ok_or_else(|| self.err("invalid \\u escape"))?
            }
            _ => return Err(self.err("unknown escape character")),
        })
    }

    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self.peek().ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (c as char).to_digit(16).ok_or_else(|| self.err("bad hex digit"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::U(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::I(i));
            }
        }
        text.parse::<f64>()
            .map(Json::F)
            .map_err(|_| JsonParseError { offset: start, msg: format!("bad number {text:?}") })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::U(42).render(), "42");
        assert_eq!(Json::I(-7).render(), "-7");
        assert_eq!(Json::F(1.5).render(), "1.5");
        assert_eq!(Json::F(3.0).render(), "3.0");
        assert_eq!(Json::F(f64::NAN).render(), "null");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(Json::s("a\"b\\c\nd").render(), r#""a\"b\\c\nd""#);
        assert_eq!(Json::s("\u{1}").render(), "\"\\u0001\"");
    }

    #[test]
    fn containers_render() {
        let v = Json::obj(vec![
            ("xs", Json::A(vec![Json::U(1), Json::U(2)])),
            ("name", Json::s("t")),
        ]);
        assert_eq!(v.render(), r#"{"xs":[1,2],"name":"t"}"#);
    }

    #[test]
    fn pretty_is_valid_and_indented() {
        let v = Json::obj(vec![("a", Json::A(vec![Json::U(1)]))]);
        let p = v.render_pretty();
        assert!(p.contains("\n  \"a\": [\n"));
    }

    #[test]
    fn parse_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("42").unwrap(), Json::U(42));
        assert_eq!(Json::parse("-7").unwrap(), Json::I(-7));
        assert_eq!(Json::parse("1.5").unwrap(), Json::F(1.5));
        assert_eq!(Json::parse("2e3").unwrap(), Json::F(2000.0));
        assert_eq!(Json::parse("18446744073709551615").unwrap(), Json::U(u64::MAX));
    }

    #[test]
    fn parse_strings_with_escapes() {
        assert_eq!(Json::parse(r#""a\"b\\c\nd""#).unwrap(), Json::s("a\"b\\c\nd"));
        assert_eq!(Json::parse(r#""Aé""#).unwrap(), Json::s("Aé"));
        assert_eq!(Json::parse(r#""😀""#).unwrap(), Json::s("😀"));
    }

    #[test]
    fn parse_containers_and_accessors() {
        let v = Json::parse(r#"{"xs":[1,2],"name":"t","f":2.5,"ok":true}"#).unwrap();
        assert_eq!(v.get("name").and_then(Json::as_str), Some("t"));
        assert_eq!(v.get("xs").and_then(Json::as_array).map(<[Json]>::len), Some(2));
        assert_eq!(v.get("f").and_then(Json::as_f64), Some(2.5));
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parse_errors_carry_offsets() {
        let e = Json::parse("[1,]").unwrap_err();
        assert_eq!(e.offset, 3);
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{\"a\":1} extra").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn round_trips_survive_parse() {
        let original = Json::obj(vec![
            ("schema", Json::s("rc-bench-trajectory/v1")),
            ("neg", Json::I(-3)),
            ("pi", Json::F(3.5)),
            ("none", Json::Null),
            ("runs", Json::A(vec![Json::obj(vec![("cycles", Json::U(12345))])])),
        ]);
        for text in [original.render(), original.render_pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), original);
        }
    }
}
