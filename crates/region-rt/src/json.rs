//! A minimal JSON document model and serializer.
//!
//! The build environment is offline and the workspace carries no external
//! crates, so the telemetry JSONL export and the bench-harness artifact
//! dumps share this hand-rolled encoder instead of `serde_json`. It only
//! serializes (the repo never parses JSON), which keeps it ~100 lines.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (the common case for counters).
    U(u64),
    /// A signed integer.
    I(i64),
    /// A float; non-finite values serialize as `null` per RFC 8259.
    F(f64),
    /// A string.
    S(String),
    /// An array.
    A(Vec<Json>),
    /// An object with insertion-ordered keys.
    O(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for an object.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::O(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Convenience constructor for a string value.
    pub fn s(v: impl Into<String>) -> Json {
        Json::S(v.into())
    }

    /// Serializes to a compact single-line string (JSONL-friendly).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Serializes with two-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U(n) => {
                let _ = write!(out, "{n}");
            }
            Json::I(n) => {
                let _ = write!(out, "{n}");
            }
            Json::F(f) => write_f64(out, *f),
            Json::S(s) => write_str(out, s),
            Json::A(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::O(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::A(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::O(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_f64(out: &mut String, f: f64) {
    if f.is_finite() {
        // Integral floats keep a trailing `.0` so the value round-trips as
        // a float in typed consumers.
        if f == f.trunc() && f.abs() < 1e15 {
            let _ = write!(out, "{f:.1}");
        } else {
            let _ = write!(out, "{f}");
        }
    } else {
        out.push_str("null");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::U(42).render(), "42");
        assert_eq!(Json::I(-7).render(), "-7");
        assert_eq!(Json::F(1.5).render(), "1.5");
        assert_eq!(Json::F(3.0).render(), "3.0");
        assert_eq!(Json::F(f64::NAN).render(), "null");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(Json::s("a\"b\\c\nd").render(), r#""a\"b\\c\nd""#);
        assert_eq!(Json::s("\u{1}").render(), "\"\\u0001\"");
    }

    #[test]
    fn containers_render() {
        let v = Json::obj(vec![
            ("xs", Json::A(vec![Json::U(1), Json::U(2)])),
            ("name", Json::s("t")),
        ]);
        assert_eq!(v.render(), r#"{"xs":[1,2],"name":"t"}"#);
    }

    #[test]
    fn pretty_is_valid_and_indented() {
        let v = Json::obj(vec![("a", Json::A(vec![Json::U(1)]))]);
        let p = v.render_pretty();
        assert!(p.contains("\n  \"a\": [\n"));
    }
}
