//! Region lifecycle spans: the causality layer over the flat event ring.
//!
//! The trace ring ([`crate::trace`]) answers *which event*; the timeline
//! ([`crate::timeline`]) answers *when*. This module adds *structure*:
//! every region's lifecycle (`newregion` → `deleteregion`) is a [`Span`]
//! in a parent/child tree mirroring the DFS `id`/`nextid` hierarchy of
//! [`crate::region`], and every alloc / rc-update / check / collection /
//! injected fault is attached to its owning span as a virtual-clock-
//! stamped [`SpanNote`]. The tree is what the Perfetto exporter in
//! `rc-bench` renders (spans on tracks, notes as instants) and what the
//! fuzzer's well-formedness oracle cross-checks.
//!
//! Design constraints, shared with the rest of the telemetry stack (see
//! `docs/OBSERVABILITY.md`):
//!
//! - **Pay only when enabled.** Every hook site tests one `Option`
//!   discriminant ([`Heap::span_on`]); the tree is `None` — the default —
//!   unless [`Heap::enable_spans`] was called. `--no-default-features`
//!   compiles the branch away entirely.
//! - **Bounded notes, exact aggregates.** Raw notes live in a bounded
//!   vector (newest dropped when full, never reallocated past the cap),
//!   but per-span counters and the per-check-site fire table are folded
//!   at emission time, so totals stay exact no matter how many notes
//!   were dropped.
//! - **Deterministic.** Spans and notes are stamped by the virtual
//!   clock only; two runs of the same program produce identical trees.
//!
//! Span indices equal region indices: the runtime never reuses a region
//! slot, so `spans()[r]` is region `r`'s span for the whole run.

use std::collections::BTreeMap;

use crate::cost::Cycles;
use crate::fault::FaultPlane;
use crate::heap::Heap;
use crate::layout::PtrKind;
use crate::region::{is_ancestor, RegionData, TRADITIONAL};
use crate::trace::NO_REGION;

/// Default bound on retained raw [`SpanNote`]s.
pub const DEFAULT_SPAN_NOTE_CAP: usize = 256 * 1024;

/// One region lifecycle. `region` is the raw
/// [`RegionId`](crate::region::RegionId) index; the span for region `r`
/// sits at index `r` of [`SpanTree::spans`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// The region this span covers.
    pub region: u32,
    /// Parent region ([`NO_REGION`] for the traditional root, or for a
    /// region whose creation predates span recording).
    pub parent: u32,
    /// Virtual time of `newregion`/`newsubregion` (the region's
    /// `born_at`, so durations equal the profile's `lifetime_cycles`).
    pub opened_at: Cycles,
    /// Virtual time of reclamation; `None` while the region is live.
    pub closed_at: Option<Cycles>,
    /// Objects allocated into the region.
    pub allocs: u64,
    /// Words allocated into the region.
    pub alloc_words: u64,
    /// Reference-count updates on objects of this region.
    pub rc_updates: u64,
    /// Annotation checks on stores into objects of this region.
    pub checks: u64,
    /// The subset of `checks` that failed.
    pub checks_failed: u64,
    /// Injected faults attributed to this span (root span only; fault
    /// planes are process-level).
    pub faults: u64,
    /// Words of storage freed when the span closed.
    pub freed_words: u64,
}

impl Span {
    fn new(region: u32, parent: u32, opened_at: Cycles) -> Span {
        Span {
            region,
            parent,
            opened_at,
            closed_at: None,
            allocs: 0,
            alloc_words: 0,
            rc_updates: 0,
            checks: 0,
            checks_failed: 0,
            faults: 0,
            freed_words: 0,
        }
    }

    /// Span duration: reclamation minus creation (`None` while open).
    pub fn duration(&self) -> Option<Cycles> {
        self.closed_at.map(|c| c.saturating_sub(self.opened_at))
    }
}

/// One span-scoped annotation, stamped by the virtual clock. `site`
/// fields are 1-based source lines (0 = unattributed); `check_site` is
/// the front-end check-site id
/// ([`NO_CHECK_SITE`](crate::checkcount::NO_CHECK_SITE) when the
/// interpreter did not publish one).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanNote {
    /// An object was allocated into `region`.
    Alloc {
        /// Owning region (the traditional region for malloc/GC objects).
        region: u32,
        /// Virtual time.
        at: Cycles,
        /// Source line (0 = unattributed).
        site: u32,
        /// Size in words.
        words: u32,
    },
    /// A reference-count update ran on an object of `region`.
    Rc {
        /// Region of the object containing the updated slot.
        region: u32,
        /// Virtual time.
        at: Cycles,
        /// Source line (0 = unattributed).
        site: u32,
        /// Whether the counts actually changed (Figure 3(a) full path).
        full: bool,
    },
    /// An annotation check ran on a store into an object of `region`.
    Check {
        /// Region of the stored-into object.
        region: u32,
        /// Virtual time.
        at: Cycles,
        /// Source line (0 = unattributed).
        site: u32,
        /// Front-end check-site id for static↔dynamic attribution.
        check_site: u32,
        /// Which annotation was checked.
        kind: PtrKind,
        /// Whether the check passed.
        passed: bool,
        /// The static verdict the inference reached for this site
        /// (`true` = eliminable in principle; the check ran anyway
        /// because the configuration keeps all checks).
        statically_safe: bool,
    },
    /// A mark–sweep collection ran (attributed to the root span).
    Gc {
        /// Virtual time.
        at: Cycles,
        /// Words examined by marking.
        marked_words: u64,
        /// Objects reclaimed by the sweep.
        swept_objects: u64,
    },
    /// A fault plane injected a failure (attributed to the root span).
    Fault {
        /// Virtual time.
        at: Cycles,
        /// The plane that fired.
        plane: FaultPlane,
        /// 1-based operation ordinal on that plane.
        op: u64,
    },
}

impl SpanNote {
    /// Virtual-clock stamp of the note.
    pub fn at(&self) -> Cycles {
        match *self {
            SpanNote::Alloc { at, .. }
            | SpanNote::Rc { at, .. }
            | SpanNote::Check { at, .. }
            | SpanNote::Gc { at, .. }
            | SpanNote::Fault { at, .. } => at,
        }
    }

    /// The span (region index) the note is attributed to.
    pub fn region(&self) -> u32 {
        match *self {
            SpanNote::Alloc { region, .. }
            | SpanNote::Rc { region, .. }
            | SpanNote::Check { region, .. } => region,
            SpanNote::Gc { .. } | SpanNote::Fault { .. } => TRADITIONAL.0,
        }
    }
}

/// Exact per-check-site dynamic outcome tally (folded at emission time,
/// immune to note drops). Keyed by the front-end check-site id.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SiteFires {
    /// Times the check executed.
    pub fires: u64,
    /// The subset of `fires` that failed.
    pub fails: u64,
    /// The static verdict the interpreter published for the site.
    pub statically_safe: bool,
}

/// The span tree of one run: one [`Span`] per region (index = region
/// id), bounded raw [`SpanNote`]s, and exact folded tallies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanTree {
    spans: Vec<Span>,
    notes: Vec<SpanNote>,
    note_cap: usize,
    notes_dropped: u64,
    check_sites: BTreeMap<u32, SiteFires>,
    verified: Option<Result<(), String>>,
}

impl SpanTree {
    /// An empty tree retaining at most `note_cap` raw notes (clamped to
    /// at least 16).
    pub fn new(note_cap: usize) -> SpanTree {
        SpanTree {
            spans: Vec::new(),
            notes: Vec::new(),
            note_cap: note_cap.max(16),
            notes_dropped: 0,
            check_sites: BTreeMap::new(),
            verified: None,
        }
    }

    /// Rebuilds a tree from snapshot-recorded span aggregates (restore
    /// path). Raw notes are not part of a snapshot, so the restore layer
    /// passes at most one synthetic note per region — just enough to
    /// reproduce the snapshot's `last_touch` stamps.
    pub(crate) fn from_snapshot(spans: Vec<Span>, notes: Vec<SpanNote>) -> SpanTree {
        SpanTree {
            spans,
            notes,
            note_cap: DEFAULT_SPAN_NOTE_CAP,
            notes_dropped: 0,
            check_sites: BTreeMap::new(),
            verified: None,
        }
    }

    /// A tree seeded from an existing region table: every region already
    /// created gets a span (closed with zero duration if already dead,
    /// so the index invariant holds from the first recorded event).
    pub fn seeded(note_cap: usize, regions: &[RegionData]) -> SpanTree {
        let mut t = SpanTree::new(note_cap);
        for (i, rd) in regions.iter().enumerate() {
            let parent = rd.parent.map_or(NO_REGION, |p| p.0);
            let mut s = Span::new(i as u32, parent, rd.born_at);
            if !rd.alive {
                s.closed_at = Some(rd.born_at);
            }
            t.spans.push(s);
        }
        t
    }

    /// Opens the span for a newly created region.
    pub fn open(&mut self, region: u32, parent: u32, at: Cycles) {
        self.spans.push(Span::new(region, parent, at));
    }

    /// Grafts another tree's spans into this one under a shard-global
    /// region namespace (shard → global roll-up; see [`crate::shard`]).
    ///
    /// The other tree's region 0 — its facet of the shared traditional
    /// region — folds its counters into this tree's root span; every
    /// other region `r ≥ 1` is renumbered to `len(self) + r - 1`, which
    /// keeps the `spans[i].region == i` index invariant dense. Notes are
    /// appended in emission order with the same renumbering (still
    /// bounded by this tree's note cap), and per-check-site tallies sum.
    /// The merge is associative: `(a ⊔ b) ⊔ c` and `a ⊔ (b ⊔ c)` assign
    /// every region the same global index and the same counters. It is
    /// deliberately *not* commutative — shard order is join order.
    ///
    /// Verification is per-heap (a merged tree spans several region
    /// tables): each side is expected to carry its own
    /// [`SpanTree::verification`] verdict, and the merged tree keeps the
    /// first failure.
    pub fn merge(&mut self, other: &SpanTree) {
        debug_assert!(
            !self.spans.is_empty() || other.spans.is_empty(),
            "merge target must already hold its root span"
        );
        let base = self.spans.len() as u32;
        let remap = |r: u32| {
            if r == TRADITIONAL.0 || r == NO_REGION {
                r
            } else {
                base + r - 1
            }
        };
        for s in &other.spans {
            if s.region == TRADITIONAL.0 {
                if let Some(root) = self.spans.get_mut(TRADITIONAL.0 as usize) {
                    root.allocs += s.allocs;
                    root.alloc_words += s.alloc_words;
                    root.rc_updates += s.rc_updates;
                    root.checks += s.checks;
                    root.checks_failed += s.checks_failed;
                    root.faults += s.faults;
                    root.freed_words += s.freed_words;
                }
                continue;
            }
            let mut ns = *s;
            ns.region = remap(s.region);
            ns.parent = remap(s.parent);
            self.spans.push(ns);
        }
        for n in &other.notes {
            let mut nn = *n;
            match &mut nn {
                SpanNote::Alloc { region, .. }
                | SpanNote::Rc { region, .. }
                | SpanNote::Check { region, .. } => *region = remap(*region),
                SpanNote::Gc { .. } | SpanNote::Fault { .. } => {}
            }
            self.push_note(nn);
        }
        self.notes_dropped += other.notes_dropped;
        for (site, f) in &other.check_sites {
            let e = self.check_sites.entry(*site).or_default();
            e.fires += f.fires;
            e.fails += f.fails;
            e.statically_safe = f.statically_safe;
        }
        if let Some(Err(e)) = &other.verified {
            if !matches!(self.verified, Some(Err(_))) {
                self.verified = Some(Err(e.clone()));
            }
        }
    }

    /// The table-free subset of [`SpanTree::verify`]: index and parent
    /// integrity plus lifetime nesting, checkable on a merged tree that
    /// spans several heaps (and therefore has no single region table to
    /// verify against).
    pub fn structurally_well_formed(&self) -> Result<(), String> {
        for (i, s) in self.spans.iter().enumerate() {
            if s.region as usize != i {
                return Err(format!("span {i} records region {}", s.region));
            }
            if let Some(c) = s.closed_at {
                if c < s.opened_at {
                    return Err(format!("span {i}: closed at {c} before open {}", s.opened_at));
                }
            }
            if s.parent != NO_REGION && self.spans.get(s.parent as usize).is_none() {
                return Err(format!("span {i}: parent {} out of range", s.parent));
            }
        }
        Ok(())
    }

    /// Closes a span at reclamation time.
    pub fn close(&mut self, region: u32, at: Cycles, freed_words: u64) {
        if let Some(s) = self.spans.get_mut(region as usize) {
            s.closed_at = Some(at);
            s.freed_words = freed_words;
        }
    }

    fn push_note(&mut self, note: SpanNote) {
        if self.notes.len() < self.note_cap {
            self.notes.push(note);
        } else {
            self.notes_dropped += 1;
        }
    }

    fn span_mut(&mut self, region: u32) -> Option<&mut Span> {
        self.spans.get_mut(region as usize)
    }

    /// Records an allocation into `region`.
    pub fn note_alloc(&mut self, region: u32, at: Cycles, site: u32, words: u32) {
        if let Some(s) = self.span_mut(region) {
            s.allocs += 1;
            s.alloc_words += words as u64;
        }
        self.push_note(SpanNote::Alloc { region, at, site, words });
    }

    /// Records a reference-count update on an object of `region`.
    pub fn note_rc(&mut self, region: u32, at: Cycles, site: u32, full: bool) {
        if let Some(s) = self.span_mut(region) {
            s.rc_updates += 1;
        }
        self.push_note(SpanNote::Rc { region, at, site, full });
    }

    /// Records an annotation check on a store into an object of
    /// `region`, folding the exact per-check-site tally.
    #[allow(clippy::too_many_arguments)]
    pub fn note_check(
        &mut self,
        region: u32,
        at: Cycles,
        site: u32,
        check_site: u32,
        kind: PtrKind,
        passed: bool,
        statically_safe: bool,
    ) {
        if let Some(s) = self.span_mut(region) {
            s.checks += 1;
            if !passed {
                s.checks_failed += 1;
            }
        }
        if check_site != crate::checkcount::NO_CHECK_SITE {
            let e = self.check_sites.entry(check_site).or_default();
            e.fires += 1;
            if !passed {
                e.fails += 1;
            }
            e.statically_safe = statically_safe;
        }
        self.push_note(SpanNote::Check {
            region,
            at,
            site,
            check_site,
            kind,
            passed,
            statically_safe,
        });
    }

    /// Records a mark–sweep collection (root span).
    pub fn note_gc(&mut self, at: Cycles, marked_words: u64, swept_objects: u64) {
        self.push_note(SpanNote::Gc { at, marked_words, swept_objects });
    }

    /// Records an injected fault (root span).
    pub fn note_fault(&mut self, at: Cycles, plane: FaultPlane, op: u64) {
        if let Some(s) = self.span_mut(TRADITIONAL.0) {
            s.faults += 1;
        }
        self.push_note(SpanNote::Fault { at, plane, op });
    }

    /// All spans, region id ascending (index = region id).
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Retained raw notes, emission order.
    pub fn notes(&self) -> &[SpanNote] {
        &self.notes
    }

    /// Notes discarded because the bound was hit.
    pub fn notes_dropped(&self) -> u64 {
        self.notes_dropped
    }

    /// The note bound this tree was created with.
    pub fn note_cap(&self) -> usize {
        self.note_cap
    }

    /// Exact per-check-site outcome tallies, site id ascending.
    pub fn check_sites(&self) -> impl Iterator<Item = (u32, &SiteFires)> {
        self.check_sites.iter().map(|(&k, v)| (k, v))
    }

    /// The tally for one check site, if it ever fired.
    pub fn site_fires(&self, check_site: u32) -> Option<SiteFires> {
        self.check_sites.get(&check_site).copied()
    }

    /// Spans still open.
    pub fn open_count(&self) -> usize {
        self.spans.iter().filter(|s| s.closed_at.is_none()).count()
    }

    /// Spans closed by reclamation.
    pub fn closed_count(&self) -> usize {
        self.spans.iter().filter(|s| s.closed_at.is_some()).count()
    }

    /// Sum of `allocs` over all spans.
    pub fn total_allocs(&self) -> u64 {
        self.spans.iter().map(|s| s.allocs).sum()
    }

    /// Sum of `alloc_words` over all spans.
    pub fn total_alloc_words(&self) -> u64 {
        self.spans.iter().map(|s| s.alloc_words).sum()
    }

    /// Sum of `rc_updates` over all spans.
    pub fn total_rc_updates(&self) -> u64 {
        self.spans.iter().map(|s| s.rc_updates).sum()
    }

    /// Sum of `checks` over all spans.
    pub fn total_checks(&self) -> u64 {
        self.spans.iter().map(|s| s.checks).sum()
    }

    /// Sum of `faults` over all spans.
    pub fn total_faults(&self) -> u64 {
        self.spans.iter().map(|s| s.faults).sum()
    }

    /// Stamps the outcome of [`Heap::seal_spans`]' well-formedness
    /// verification into the tree, so consumers that only see the
    /// detached tree (the fuzz oracle, report builders) can read it.
    pub fn set_verified(&mut self, outcome: Result<(), String>) {
        self.verified = Some(outcome);
    }

    /// The stamped verification outcome (`None` = never verified).
    pub fn verification(&self) -> Option<&Result<(), String>> {
        self.verified.as_ref()
    }

    /// Checks the tree's well-formedness against the region table:
    ///
    /// - one span per region, `span.region` = its index;
    /// - balanced open/close — a span is closed iff its region is dead;
    /// - children time-nested within parents (a child opens no earlier
    ///   than its parent and closes no later — region deletion is
    ///   structurally bottom-up);
    /// - parent links of live spans match the heap's, and live
    ///   parent/child pairs satisfy the DFS `id`/`nextid` interval
    ///   containment that backs the `parentptr` check.
    pub fn verify(&self, regions: &[RegionData]) -> Result<(), String> {
        if self.spans.len() != regions.len() {
            return Err(format!(
                "span/region count mismatch: {} spans, {} regions",
                self.spans.len(),
                regions.len()
            ));
        }
        for (i, s) in self.spans.iter().enumerate() {
            let rd = &regions[i];
            if s.region as usize != i {
                return Err(format!("span {i} records region {}", s.region));
            }
            if s.closed_at.is_some() == rd.alive {
                return Err(format!(
                    "span {i}: closed={} but region alive={}",
                    s.closed_at.is_some(),
                    rd.alive
                ));
            }
            if let Some(c) = s.closed_at {
                if c < s.opened_at {
                    return Err(format!("span {i}: closed at {c} before open {}", s.opened_at));
                }
            }
            if rd.alive {
                let heap_parent = rd.parent.map_or(NO_REGION, |p| p.0);
                if i != TRADITIONAL.0 as usize && s.parent != heap_parent {
                    return Err(format!(
                        "span {i}: parent {} but region parent {heap_parent}",
                        s.parent
                    ));
                }
            }
            if s.parent != NO_REGION {
                let Some(p) = self.spans.get(s.parent as usize) else {
                    return Err(format!("span {i}: parent {} out of range", s.parent));
                };
                if s.opened_at < p.opened_at {
                    return Err(format!(
                        "span {i} opened at {} before its parent ({})",
                        s.opened_at, p.opened_at
                    ));
                }
                if let Some(pc) = p.closed_at {
                    match s.closed_at {
                        None => {
                            return Err(format!("span {i} open after parent {} closed", s.parent))
                        }
                        Some(c) if c > pc => {
                            return Err(format!(
                                "span {i} closed at {c}, after parent {} at {pc}",
                                s.parent
                            ))
                        }
                        Some(_) => {}
                    }
                }
                // DFS interval containment only holds for the *live*
                // hierarchy (dead regions keep stale numbers).
                let pd = &regions[s.parent as usize];
                if rd.alive && pd.alive {
                    if rd.id >= rd.nextid {
                        return Err(format!(
                            "region {i}: empty DFS interval [{}, {})",
                            rd.id, rd.nextid
                        ));
                    }
                    if !is_ancestor(regions, crate::region::RegionId(s.parent), crate::region::RegionId(i as u32))
                        || rd.nextid > pd.nextid
                    {
                        return Err(format!(
                            "region {i} interval [{}, {}) not inside parent {} [{}, {})",
                            rd.id, rd.nextid, s.parent, pd.id, pd.nextid
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

impl Heap {
    /// Whether span recording is active. One branch; compiled out
    /// without the `telemetry` feature.
    #[inline(always)]
    pub(crate) fn span_on(&self) -> bool {
        #[cfg(feature = "telemetry")]
        {
            self.span_tree.is_some()
        }
        #[cfg(not(feature = "telemetry"))]
        {
            false
        }
    }

    /// Attaches a [`SpanTree`] retaining at most `note_cap` raw notes.
    /// Regions that already exist are seeded (the traditional region's
    /// span opens at time 0). Replaces any existing tree. Under
    /// `--no-default-features` this is a no-op.
    pub fn enable_spans(&mut self, note_cap: usize) {
        #[cfg(feature = "telemetry")]
        {
            self.span_tree = Some(Box::new(SpanTree::seeded(note_cap, &self.regions)));
        }
        #[cfg(not(feature = "telemetry"))]
        {
            let _ = note_cap;
        }
    }

    /// Detaches and returns the span tree, disabling further recording.
    pub fn take_spans(&mut self) -> Option<Box<SpanTree>> {
        self.span_tree.take()
    }

    /// The attached span tree, if any.
    pub fn spans(&self) -> Option<&SpanTree> {
        self.span_tree.as_deref()
    }

    /// Whether a span tree is attached.
    pub fn spans_enabled(&self) -> bool {
        self.span_tree.is_some()
    }

    /// Publishes the static verdict of the next annotation check's site
    /// (pairs with [`Heap::set_check_site`]); stamped into span check
    /// notes as `statically_safe`.
    #[inline(always)]
    pub fn set_check_verdict(&mut self, safe: bool) {
        self.check_safe = safe;
    }

    /// Verifies the span tree against the live region table and stamps
    /// the outcome into the tree (see [`SpanTree::verification`]).
    /// No-op when spans are disabled. Returns the outcome.
    pub fn seal_spans(&mut self) -> Result<(), String> {
        let outcome = match self.span_tree.as_deref() {
            Some(t) => t.verify(&self.regions),
            None => return Ok(()),
        };
        if let Some(t) = self.span_tree.as_mut() {
            t.set_verified(outcome.clone());
        }
        outcome
    }

    /// Opens a span for a new region. Callers guard with
    /// [`Heap::span_on`].
    #[cold]
    pub(crate) fn span_open(&mut self, region: u32, parent: u32, at: Cycles) {
        if let Some(t) = self.span_tree.as_mut() {
            t.open(region, parent, at);
        }
    }

    /// Closes a region's span at reclamation.
    #[cold]
    pub(crate) fn span_close(&mut self, region: u32, at: Cycles, freed_words: u64) {
        if let Some(t) = self.span_tree.as_mut() {
            t.close(region, at, freed_words);
        }
    }

    /// Records an allocation note.
    #[cold]
    pub(crate) fn span_note_alloc(&mut self, region: u32, words: u32) {
        let at = self.clock.cycles();
        let site = self.trace_site;
        if let Some(t) = self.span_tree.as_mut() {
            t.note_alloc(region, at, site, words);
        }
    }

    /// Records a reference-count-update note.
    #[cold]
    pub(crate) fn span_note_rc(&mut self, region: u32, full: bool) {
        let at = self.clock.cycles();
        let site = self.trace_site;
        if let Some(t) = self.span_tree.as_mut() {
            t.note_rc(region, at, site, full);
        }
    }

    /// Records a check note on the store into `obj`, carrying both
    /// attribution channels (source line + front-end check site) and
    /// the published static verdict.
    #[cold]
    pub(crate) fn span_note_check(&mut self, obj: crate::addr::Addr, kind: PtrKind, passed: bool) {
        let region = self.try_region_of(obj).map_or(TRADITIONAL, |r| r).0;
        let at = self.clock.cycles();
        let site = self.trace_site;
        let check_site = self.check_site;
        let safe = self.check_safe;
        if let Some(t) = self.span_tree.as_mut() {
            t.note_check(region, at, site, check_site, kind, passed, safe);
        }
    }

    /// Records a collection note.
    #[cold]
    pub(crate) fn span_note_gc(&mut self, marked_words: u64, swept_objects: u64) {
        let at = self.clock.cycles();
        if let Some(t) = self.span_tree.as_mut() {
            t.note_gc(at, marked_words, swept_objects);
        }
    }

    /// Records one injected fault everywhere the observability stack can
    /// see it: the `faults_injected` stat, the trace ring (satellite fix
    /// — fault-plane events used to bypass it), and the span tree.
    #[cold]
    pub(crate) fn note_fault_injected(&mut self, plane: FaultPlane, op: u64, at: Cycles) {
        self.stats.faults_injected += 1;
        if self.trace_on(crate::trace::mask::FAULT) {
            self.trace_emit(crate::trace::Event::Fault { plane, op, at });
        }
        if self.span_on() {
            if let Some(t) = self.span_tree.as_mut() {
                t.note_fault(at, plane, op);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::Heap;
    use crate::layout::{SlotKind, TypeLayout};

    fn ty(h: &mut Heap) -> crate::layout::TypeId {
        h.register_type(TypeLayout::new("t", vec![SlotKind::Data, SlotKind::Data]))
    }

    #[test]
    fn spans_mirror_region_lifecycles() {
        let mut h = Heap::with_defaults();
        let ty = ty(&mut h);
        h.enable_spans(DEFAULT_SPAN_NOTE_CAP);
        let parent = h.new_region();
        let child = h.new_subregion(parent).unwrap();
        h.ralloc(child, ty).unwrap();
        h.ralloc(child, ty).unwrap();
        h.delete_region(child).unwrap();
        h.delete_region(parent).unwrap();
        assert!(h.seal_spans().is_ok());
        let t = h.take_spans().unwrap();
        assert_eq!(t.spans().len(), 3, "traditional + two regions");
        let c = t.spans()[child.0 as usize];
        assert_eq!(c.parent, parent.0);
        assert_eq!(c.allocs, 2);
        assert_eq!(c.alloc_words, 4);
        assert!(c.closed_at.is_some());
        assert!(t.spans()[0].closed_at.is_none(), "root never closes");
        assert_eq!(t.open_count(), 1);
        assert_eq!(t.closed_count(), 2);
        assert_eq!(t.verification(), Some(&Ok(())));
    }

    #[test]
    fn child_nesting_and_duration_hold() {
        let mut h = Heap::with_defaults();
        h.enable_spans(64);
        let r = h.new_region();
        let s = h.new_subregion(r).unwrap();
        h.delete_region(s).unwrap();
        h.delete_region(r).unwrap();
        let t = h.take_spans().unwrap();
        let (pr, ch) = (t.spans()[r.0 as usize], t.spans()[s.0 as usize]);
        assert!(ch.opened_at >= pr.opened_at);
        assert!(ch.closed_at.unwrap() <= pr.closed_at.unwrap());
        assert_eq!(pr.duration().unwrap(), pr.closed_at.unwrap() - pr.opened_at);
    }

    #[test]
    fn note_bound_drops_but_tallies_stay_exact() {
        let mut t = SpanTree::new(16);
        t.open(0, NO_REGION, 0);
        for i in 0..40 {
            t.note_check(0, i, 1, 7, PtrKind::SameRegion, i % 2 == 0, false);
        }
        assert_eq!(t.notes().len(), 16);
        assert_eq!(t.notes_dropped(), 24);
        let f = t.site_fires(7).unwrap();
        assert_eq!(f.fires, 40, "fold is exact despite drops");
        assert_eq!(f.fails, 20);
        assert_eq!(t.total_checks(), 40);
    }

    #[test]
    fn verify_catches_unbalanced_and_misnested_trees() {
        let mut h = Heap::with_defaults();
        h.enable_spans(64);
        let r = h.new_region();
        // Balanced so far.
        assert!(h.seal_spans().is_ok());
        // Tamper: close the live region's span.
        let mut t = h.take_spans().unwrap();
        t.close(r.0, 5, 0);
        h.enable_spans(64);
        // Fresh tree is consistent again.
        assert!(h.seal_spans().is_ok());
        // The tampered tree fails against the same region table.
        let msg = t.verify(&h.regions).unwrap_err();
        assert!(msg.contains("closed=true"), "{msg}");
    }

    #[test]
    fn unwind_closes_every_span_bottom_up() {
        let mut h = Heap::with_defaults();
        h.enable_spans(1024);
        let a = h.new_region();
        let b = h.new_subregion(a).unwrap();
        let _c = h.new_subregion(b).unwrap();
        assert_eq!(h.unwind_regions(), 3);
        assert!(h.seal_spans().is_ok());
        let t = h.take_spans().unwrap();
        assert_eq!(t.open_count(), 1, "only the traditional span survives");
    }

    /// A shard-shaped tree: root span plus `extra` regions with distinct
    /// counters, one alloc note each, and some traditional-region
    /// activity to exercise the root fold.
    fn shard_tree(extra: u32, salt: u64) -> SpanTree {
        let mut t = SpanTree::new(64);
        t.open(0, NO_REGION, 0);
        t.note_alloc(0, salt, 1, salt as u32 + 1);
        for r in 1..=extra {
            t.open(r, r - 1, salt + r as u64);
            t.note_alloc(r, salt + r as u64, r, r);
            t.note_check(r, salt + r as u64, r, 10 + r, PtrKind::SameRegion, r % 2 == 0, false);
            t.close(r, salt + 100 + r as u64, r as u64);
        }
        t
    }

    #[test]
    fn merge_grafts_spans_densely_and_folds_the_root() {
        let mut a = shard_tree(2, 0);
        let b = shard_tree(3, 50);
        let (root_allocs, root_words) = (a.spans()[0].allocs, a.spans()[0].alloc_words);
        a.merge(&b);
        // 1 root + 2 own + 3 grafted, regions renumbered densely.
        assert_eq!(a.spans().len(), 6);
        a.structurally_well_formed().unwrap();
        // b's regions 1..=3 landed at 3..=5; b's region 2 (parent 1) now
        // has parent 3.
        assert_eq!(a.spans()[4].parent, 3);
        assert_eq!(a.spans()[3].parent, TRADITIONAL.0, "grafted top region hangs off the root");
        // b's traditional activity folded into a's root span.
        assert_eq!(a.spans()[0].allocs, root_allocs + 1);
        assert_eq!(a.spans()[0].alloc_words, root_words + 51);
        // Exact tallies: site 11 fired once in each tree.
        assert_eq!(a.site_fires(11).unwrap().fires, 2);
        // Grafted notes kept emission order with remapped regions.
        let last = *a.notes().last().unwrap();
        assert!(matches!(last, SpanNote::Check { region: 5, .. }), "{last:?}");
    }

    #[test]
    fn merge_is_associative_but_not_commutative() {
        let (a, b, c) = (shard_tree(1, 0), shard_tree(2, 10), shard_tree(3, 20));
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);
        let mut swapped = a.clone();
        swapped.merge(&c);
        swapped.merge(&b);
        assert_ne!(left, swapped, "join order is part of the result");
    }

    #[test]
    fn merge_keeps_the_first_verification_failure() {
        let mut a = shard_tree(1, 0);
        a.set_verified(Ok(()));
        let mut b = shard_tree(1, 5);
        b.set_verified(Err("shard 1: misnested".into()));
        let mut c = shard_tree(1, 9);
        c.set_verified(Err("shard 2: misnested".into()));
        a.merge(&b);
        a.merge(&c);
        assert_eq!(a.verification(), Some(&Err("shard 1: misnested".into())));
    }

    #[test]
    fn structurally_well_formed_rejects_broken_indexing() {
        let mut t = shard_tree(2, 0);
        t.structurally_well_formed().unwrap();
        t.close(2, 1000, 0);
        t.structurally_well_formed().unwrap();
        let mut bad = SpanTree::new(16);
        bad.open(0, NO_REGION, 0);
        bad.spans[0].region = 7;
        assert!(bad.structurally_well_formed().is_err());
    }

    #[test]
    fn enable_spans_seeds_existing_regions() {
        let mut h = Heap::with_defaults();
        let r = h.new_region();
        let dead = h.new_region();
        h.delete_region(dead).unwrap();
        h.enable_spans(64);
        assert!(h.seal_spans().is_ok());
        let t = h.spans().unwrap();
        assert_eq!(t.spans().len(), 3);
        assert!(t.spans()[r.0 as usize].closed_at.is_none());
        assert!(t.spans()[dead.0 as usize].closed_at.is_some());
    }
}
