//! Parse → pretty → parse idempotence over generated programs.
//!
//! The hand-written fixtures in rc-lang pin the pretty-printer on known
//! syntax; this property test pins it on 48 generator seeds per mode,
//! which reach deep expression nesting and qualifier combinations the
//! fixtures do not. Comparison is modulo [`rc_lang::pretty::normalise`]
//! (line positions and check-site ids are re-minted on every parse).

use rc_fuzz::gen::{generate, GenConfig};
use rc_lang::parser::parse;
use rc_lang::pretty::{normalise, print_ast};

fn assert_round_trips(seed: u64, cfg: &GenConfig) {
    let ast = generate(seed, cfg);
    let printed = print_ast(&ast);
    let reparsed = parse(&printed)
        .unwrap_or_else(|e| panic!("seed {seed}: printed source does not parse: {e}\n{printed}"));
    assert_eq!(
        normalise(&ast),
        normalise(&reparsed),
        "seed {seed}: round trip changed the AST:\n{printed}"
    );
    // Idempotence of the printed form itself: printing the reparsed AST
    // reproduces the exact bytes.
    let printed_again = print_ast(&normalise(&reparsed));
    assert_eq!(
        print_ast(&normalise(&ast)),
        printed_again,
        "seed {seed}: printing is not idempotent"
    );
}

#[test]
fn clean_programs_round_trip() {
    let cfg = GenConfig { size: 8, violations: false, spawn: true };
    for seed in 0..48 {
        assert_round_trips(seed, &cfg);
    }
}

#[test]
fn violation_programs_round_trip() {
    let cfg = GenConfig { size: 8, violations: true, spawn: true };
    for seed in 0..48 {
        assert_round_trips(seed, &cfg);
    }
}
