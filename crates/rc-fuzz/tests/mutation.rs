//! Mutation test for the inference-soundness oracle: deliberately break
//! the check-elimination verdicts and prove the harness catches it and
//! shrinks the witness to a small repro.
//!
//! The real rlang inference is sound (the fixed-seed campaigns assert
//! zero fired eliminations), so to exercise the *detector* we simulate
//! the worst possible inference bug — an analysis that declares every
//! check site safe — against generated programs that plant qualifier
//! violations. The oracle must flag the fired sites, and the shrinker
//! must reduce the witness to at most 20 statements.

use rc_fuzz::gen::{generate, statement_count, GenConfig};
use rc_fuzz::oracle::soundness_violations;
use rc_fuzz::shrink::shrink;
use rc_fuzz::Violation;
use rc_lang::ast::Ast;
use rc_lang::{CheckMode, RunConfig};
use rlang::SiteId;

const BUDGET: u64 = 5_000_000;

/// Counting-mode rerun of an AST (re-printed, so check sites are
/// re-minted in pretty order).
fn count_checks(ast: &Ast) -> Option<Box<region_rt::CheckCounter>> {
    let src = rc_lang::pretty::print_ast(ast);
    let compiled = rc_lang::prepare(&src).ok()?;
    let mut config = RunConfig::rc(CheckMode::Nq).counting_checks();
    config.step_limit = BUDGET;
    rc_lang::run_audited(&compiled, &config).check_counts
}

/// The mutation symptom: some annotation check fails dynamically, so an
/// "everything is safe" analysis is observably unsound on this program.
fn a_check_fires(ast: &Ast) -> bool {
    count_checks(ast).is_some_and(|c| c.total_fails() > 0)
}

#[test]
fn broken_inference_is_caught_and_shrunk() {
    let cfg = GenConfig { size: 8, violations: true, spawn: true };
    let mut caught = 0;
    let mut tested = 0;

    for seed in 0..16u64 {
        let ast = generate(seed, &cfg);
        let Some(counter) = count_checks(&ast) else {
            panic!("seed {seed}: generated program failed to compile or count");
        };
        if counter.total_fails() == 0 {
            // This seed happened not to plant a reachable violation.
            continue;
        }
        tested += 1;

        // The broken "inference": every site it ever saw is declared
        // safe. Oracle (2) must reject at least one of them.
        let broken: Vec<SiteId> = counter.iter().map(|(s, _)| SiteId(s)).collect();
        let flagged = soundness_violations(&broken, Some(&counter));
        assert!(
            flagged
                .iter()
                .any(|v| matches!(v, Violation::UnsoundElimination { fails, .. } if *fails > 0)),
            "seed {seed}: oracle missed the unsound elimination"
        );

        // And the witness shrinks to a small repro that still fires.
        if caught == 0 {
            let min = shrink(&ast, &a_check_fires);
            assert!(a_check_fires(&min), "seed {seed}: shrinking lost the violation");
            let n = statement_count(&min);
            assert!(
                n <= 20,
                "seed {seed}: shrunk repro still has {n} statements:\n{}",
                rc_lang::pretty::print_ast(&min)
            );
            caught += 1;
        }
    }

    assert!(tested >= 3, "violation mode planted too few reachable violations ({tested}/16)");
    assert_eq!(caught, 1, "no witness was shrunk");
}

#[test]
fn sound_inference_is_not_flagged() {
    // Control arm: on clean programs the *real* analysis' eliminated
    // sites never fire, so the same detector stays quiet.
    let cfg = GenConfig { size: 8, violations: false, spawn: true };
    for seed in 0..8u64 {
        let src = rc_fuzz::generate_source(seed, &cfg);
        let compiled = rc_lang::prepare(&src).expect("clean programs compile");
        let mut config = RunConfig::rc(CheckMode::Nq).counting_checks();
        config.step_limit = BUDGET;
        let r = rc_lang::run_audited(&compiled, &config);
        let counter = r.check_counts.as_deref().expect("counting was on");
        let flagged = soundness_violations(&compiled.analysis.eliminated_sites, Some(counter));
        assert!(flagged.is_empty(), "seed {seed}: false positive {flagged:?}");
    }
}
