//! Campaign driver: sweep seeds, run the oracle, shrink failures, and
//! assemble the `rc-fuzz-report/v1` report.
//!
//! A campaign is a pure function of its [`CampaignConfig`]: the report —
//! rendered JSON included — is byte-identical across runs, which CI
//! exploits by running the harness twice and `cmp`-ing the outputs.

use std::path::PathBuf;

use rc_bench::fuzzreport::{FuzzCase, FuzzReport};

use crate::gen::{generate_source, statement_count, GenConfig};
use crate::oracle::{check_source, config_by_name, Violation};
use crate::shrink::shrink;

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Sweep seeds `0..seeds`.
    pub seeds: u64,
    /// Generator size knob.
    pub size: u32,
    /// Per-run interpreter step budget (0 = unlimited).
    pub budget_steps: u64,
    /// Where shrunk repros of failing seeds are written (`None` = don't
    /// write).
    pub regressions_dir: Option<PathBuf>,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig { seeds: 64, size: 6, budget_steps: 20_000_000, regressions_dir: None }
    }
}

/// The deterministic regression file name for a failing seed.
pub fn repro_file_name(seed: u64, kind: &str) -> String {
    format!("seed{seed:04x}-{kind}.rc")
}

/// The deterministic file name of a post-mortem snapshot written next to
/// a repro.
pub fn snapshot_file_name(seed: u64, kind: &str, config: &str) -> String {
    format!("seed{seed:04x}-{kind}.{config}.snapshot.json")
}

/// Reruns `src` under the named oracle configuration with heap snapshots
/// on and returns the final (exit or trap) snapshot rendered as
/// `rc-bench-snapshot/v1` JSON, labeled `seedXXXX/config`. `None` when
/// the config is unknown, the shrunk source no longer compiles, or the
/// run aborts without a capture — snapshot dumping is best-effort
/// forensics and must never mask the original violation.
fn render_snapshot(src: &str, seed: u64, config_name: &str, budget_steps: u64) -> Option<String> {
    let mut config = config_by_name(config_name)?.with_spans().with_snapshots();
    if budget_steps > 0 {
        config.step_limit = budget_steps;
    }
    let compiled = rc_lang::prepare(src).ok()?;
    let r = rc_lang::run(&compiled, &config);
    let mut snap = r.snapshots.into_iter().next_back()?;
    snap.label = format!("seed{seed:04x}/{config_name}");
    Some(snap.render())
}

/// Renders a self-contained regression file: provenance header plus the
/// shrunk program.
pub fn render_repro(seed: u64, violations: &[String], shrunk_src: &str) -> String {
    let mut out = format!("// rc-fuzz regression: seed={seed}\n");
    for v in violations {
        out.push_str(&format!("// violation: {v}\n"));
    }
    out.push_str("//\n// Reproduce: cargo test -p rc-regions --test corpus\n");
    out.push_str(shrunk_src);
    out
}

/// Runs one seed end to end: generate, replay-check, oracle, shrink.
pub fn run_seed(seed: u64, cfg: &CampaignConfig) -> FuzzCase {
    let gen_cfg = GenConfig { size: cfg.size, violations: false, spawn: true };
    let src = generate_source(seed, &gen_cfg);
    let mut case = FuzzCase {
        seed,
        outcome: String::new(),
        passed: false,
        violations: Vec::new(),
        steps: 0,
        eliminated_sites: 0,
        checks_counted: 0,
        checks_fired: 0,
        shrunk_statements: None,
        repro: None,
    };

    // Byte-deterministic replay from the seed alone.
    if generate_source(seed, &gen_cfg) != src {
        case.violations
            .push("non-deterministic replay: generated source differs".to_string());
        return case;
    }

    let report = match check_source(&src, cfg.budget_steps) {
        Ok(r) => r,
        Err(e) => {
            // Generated programs are well-typed by construction; a compile
            // error is a harness bug and fails the campaign loudly.
            case.violations.push(format!("generated program does not compile: {e}"));
            return case;
        }
    };
    case.outcome = report.outcome_key.clone();
    case.steps = report.steps;
    case.eliminated_sites = report.eliminated_sites as u64;
    case.checks_counted = report.checks_counted;
    case.checks_fired = report.checks_fired;
    case.passed = report.passed();
    case.violations = report.violations.iter().map(|v| v.to_string()).collect();

    if !report.passed() {
        let kind = report.violations[0].kind();
        // Shrink while the primary violation kind persists. Sites and
        // line numbers are re-minted on every reprint, so the predicate
        // matches on the violation *kind*, not its payload.
        let ast = rc_lang::parser::parse(&src).expect("generated source parses");
        let still_fails = |a: &rc_lang::ast::Ast| -> bool {
            let printed = rc_lang::pretty::print_ast(a);
            match check_source(&printed, cfg.budget_steps) {
                Ok(r) => r.violations.iter().any(|v| v.kind() == kind),
                Err(_) => false,
            }
        };
        let min = shrink(&ast, &still_fails);
        case.shrunk_statements = Some(statement_count(&min) as u64);
        let name = repro_file_name(seed, kind);
        if let Some(dir) = &cfg.regressions_dir {
            let shrunk_src = rc_lang::pretty::print_ast(&min);
            let body = render_repro(seed, &case.violations, &shrunk_src);
            let _ = std::fs::create_dir_all(dir);
            if std::fs::write(dir.join(&name), body).is_ok() {
                case.repro = Some(name);
            }
            // Post-mortem pair: the baseline and the first implicated
            // configuration, rerun on the shrunk program with snapshots
            // on, written beside the repro for `rc-inspect diff`.
            let implicated = report
                .violations
                .iter()
                .find_map(|v| match v {
                    Violation::Divergence { config, .. }
                    | Violation::AuditFailure { config, .. } => Some(*config),
                    _ => None,
                })
                .unwrap_or("inf");
            for cname in ["lea", implicated] {
                if let Some(rendered) =
                    render_snapshot(&shrunk_src, seed, cname, cfg.budget_steps)
                {
                    let _ = std::fs::write(dir.join(snapshot_file_name(seed, kind, cname)), rendered);
                }
            }
        } else {
            case.repro = Some(name);
        }
    }
    case
}

/// Runs the whole campaign.
pub fn run_campaign(cfg: &CampaignConfig) -> FuzzReport {
    let cases = (0..cfg.seeds).map(|seed| run_seed(seed, cfg)).collect();
    FuzzReport { seeds: cfg.seeds, size: cfg.size, budget_steps: cfg.budget_steps, cases }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_seed_sweep_is_clean_and_deterministic() {
        // The tier-1 anchor: a small fixed-seed campaign must be
        // violation-free, and its rendered report byte-stable.
        let cfg = CampaignConfig { seeds: 24, budget_steps: 20_000_000, ..Default::default() };
        let a = run_campaign(&cfg);
        for c in &a.cases {
            assert!(c.passed, "seed {} failed: {:?}", c.seed, c.violations);
        }
        assert!(
            a.cases.iter().map(|c| c.checks_counted).sum::<u64>() > 0,
            "the sweep must exercise annotation checks"
        );
        assert!(
            a.cases.iter().map(|c| c.eliminated_sites).sum::<u64>() > 0,
            "the sweep must exercise the inference"
        );
        let b = run_campaign(&cfg);
        assert_eq!(a.to_json().render(), b.to_json().render());
    }

    #[test]
    fn snapshot_pair_renders_for_a_diverging_program() {
        // The qualifier-matrix divergence program: qs traps the cross-
        // region store, lea does not. Both post-mortems must render,
        // deterministically, with the seed/config label stamped in.
        let src = "
struct node { int v; struct node *sameregion next; };

int main() deletes {
    region r0 = newregion();
    region r1 = newregion();
    struct node *a = ralloc(r0, struct node);
    struct node *b = ralloc(r1, struct node);
    b->next = a;
    deleteregion(r1);
    deleteregion(r0);
    return 0;
}
";
        for cname in ["lea", "qs"] {
            let one = render_snapshot(src, 0x2a, cname, 0).expect("snapshot renders");
            let two = render_snapshot(src, 0x2a, cname, 0).unwrap();
            assert_eq!(one, two, "{cname} snapshot must be byte-deterministic");
            assert!(one.contains(&format!("\"seed002a/{cname}\"")), "label stamped");
            assert!(one.contains("rc-bench-snapshot/v1"));
        }
        // The counting alias and unknown names resolve sanely.
        assert!(render_snapshot(src, 1, "nq+count", 0).is_some());
        assert!(render_snapshot(src, 1, "bogus", 0).is_none());
        assert_eq!(
            snapshot_file_name(0x2a, "divergence", "qs"),
            "seed002a-divergence.qs.snapshot.json"
        );
    }

    #[test]
    fn repro_files_are_self_contained() {
        let body = render_repro(
            0x2a,
            &["divergence: qs saw abort:check_failed, baseline saw exit:0".to_string()],
            "int main() { return 0; }\n",
        );
        assert!(body.starts_with("// rc-fuzz regression: seed=42\n"));
        assert!(body.contains("// violation: divergence"));
        assert!(body.ends_with("int main() { return 0; }\n"));
        assert_eq!(repro_file_name(0x2a, "divergence"), "seed002a-divergence.rc");
    }
}
