//! The `rc-fuzz` binary: differential conformance campaign over
//! generated RC programs.
//!
//! ```text
//! cargo run --release -p rc-fuzz -- --seeds 256 --budget-steps 20000000 --json
//! ```
//!
//! Options:
//!
//! - `--seeds N` — sweep seeds `0..N` (default 64);
//! - `--size K` — generator size knob (default 6);
//! - `--budget-steps M` — per-run interpreter step budget, 0 = unlimited
//!   (default 20000000);
//! - `--json` — emit the full `rc-fuzz-report/v1` JSON on stdout instead
//!   of the human summary;
//! - `--regressions DIR` — where shrunk repros of failing seeds are
//!   written (default `tests/corpus/regressions/` in the repository);
//! - `--no-write` — do not write repro files;
//! - `--dump SEED` — print the generated source for one seed and exit
//!   (`--violations` switches the generator to violation-planting mode,
//!   `--no-spawn` suppresses `spawn`/`join` sections).
//!
//! The output is byte-deterministic for fixed options: CI runs the
//! campaign twice and `cmp`s the reports. Exits 0 when every oracle
//! assertion held, 1 otherwise.

use std::path::PathBuf;

use rc_bench::{flag_from_args, value_from_args};
use rc_fuzz::campaign::{run_campaign, CampaignConfig};

fn main() {
    let seeds = value_from_args("--seeds").and_then(|v| v.parse().ok()).unwrap_or(64);
    let size = value_from_args("--size").and_then(|v| v.parse().ok()).unwrap_or(6);
    let budget_steps =
        value_from_args("--budget-steps").and_then(|v| v.parse().ok()).unwrap_or(20_000_000);
    let regressions_dir = if flag_from_args("--no-write") {
        None
    } else {
        Some(
            value_from_args("--regressions").map(PathBuf::from).unwrap_or_else(|| {
                PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus/regressions")
            }),
        )
    };

    if let Some(seed) = value_from_args("--dump").and_then(|v| v.parse().ok()) {
        let gen_cfg = rc_fuzz::GenConfig {
            size,
            violations: flag_from_args("--violations"),
            spawn: !flag_from_args("--no-spawn"),
        };
        print!("{}", rc_fuzz::generate_source(seed, &gen_cfg));
        return;
    }

    let cfg = CampaignConfig { seeds, size, budget_steps, regressions_dir };
    let report = run_campaign(&cfg);

    if flag_from_args("--json") {
        println!("{}", report.render());
    } else {
        println!("{}", report.summary());
        for case in report.failures() {
            println!("seed {}:", case.seed);
            for v in &case.violations {
                println!("  {v}");
            }
            if let Some(name) = &case.repro {
                println!(
                    "  shrunk to {} statement(s), repro: {name}",
                    case.shrunk_statements.unwrap_or(0)
                );
            }
        }
    }

    std::process::exit(if report.passed() { 0 } else { 1 });
}
