#![warn(missing_docs)]

//! # rc-fuzz — differential conformance harness for RC
//!
//! Grammar-directed generation of well-typed RC programs, cross-checked
//! over the allocator matrix with an inference-soundness oracle and an
//! auto-shrinking minimiser.

pub mod campaign;
pub mod gen;
pub mod oracle;
pub mod rng;
pub mod shrink;

pub use campaign::{run_campaign, run_seed, CampaignConfig};
pub use gen::{generate, generate_source, statement_count, GenConfig};
pub use oracle::{check_source, five_configs, outcome_key, CaseReport, Violation};
pub use rng::Rng;
pub use shrink::shrink;
