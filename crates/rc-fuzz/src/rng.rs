//! Deterministic randomness: SplitMix64, the same generator the
//! repository's property-test harnesses hand-roll (the build environment
//! has no registry access, so there is no external PRNG crate). Every
//! draw depends only on the seed, so a generated program is a pure
//! function of `(seed, GenConfig)`.

/// A SplitMix64 stream.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// A stream seeded by `seed` (any value, including 0, is fine).
    pub fn new(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..n` (`n` must be nonzero).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform draw in `lo..=hi`.
    pub fn range(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        lo + (self.below((hi - lo + 1) as u64) as i64)
    }

    /// True with probability `pct`/100.
    pub fn chance(&mut self, pct: u64) -> bool {
        self.below(100) < pct
    }

    /// A uniformly chosen element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }

    /// A uniformly chosen index into a non-empty slice.
    pub fn pick_idx<T>(&mut self, xs: &[T]) -> usize {
        self.below(xs.len() as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // First outputs for seed 1234567 (cross-checked against the
        // published SplitMix64 reference implementation).
        let mut r = Rng::new(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn helpers_stay_in_range() {
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
            let v = r.range(-3, 9);
            assert!((-3..=9).contains(&v));
        }
    }
}
