//! Delta-debugging minimisation of failing RC programs.
//!
//! [`shrink`] takes an AST and an *interestingness* predicate (typically
//! "the oracle still reports this exact violation") and greedily applies
//! semantics-shrinking edits, keeping an edit only when the candidate
//! still passes `sema` **and** the predicate. Edit families, tried most
//! aggressive first:
//!
//! 1. whole-function removal (non-`main`);
//! 2. cascade removal of a declaration plus every statement mentioning
//!    the declared name (regions disappear together with their
//!    `deleteregion`, node variables with their stores);
//! 3. ddmin-style removal of contiguous block-item chunks, halving the
//!    chunk size down to single items (recursing through `if`/loop/block
//!    bodies);
//! 4. local simplifications: an `if` collapses to its then-branch, an
//!    `else` drops, a loop unwraps to its body, a `spawn` inlines to a
//!    plain block, initialisers decay to `null`.
//!
//! Every candidate is revalidated through [`rc_lang::sema::check`]
//! *before* the (expensive) predicate runs, so the shrinker can never
//! hand the oracle an ill-formed program. Because the predicate usually
//! re-prints and re-parses the candidate (re-minting check-site ids),
//! shrinking is deterministic: same input, same predicate, same minimum.

use rc_lang::ast::*;

/// What a traversal callback decides about one block item.
enum Edit {
    /// Keep the item and recurse into it.
    Keep,
    /// Delete the item (children included).
    Remove,
    /// Substitute the item (no recursion into the replacement).
    Replace(Box<BlockItem>),
}

/// Pre-order traversal over every block item in a statement list,
/// assigning each item a global index consistent with
/// [`crate::gen::statement_count`].
fn edit_items(
    items: &mut Vec<BlockItem>,
    ctr: &mut usize,
    f: &mut impl FnMut(usize, &BlockItem) -> Edit,
) {
    let mut i = 0;
    while i < items.len() {
        let idx = *ctr;
        *ctr += 1;
        match f(idx, &items[i]) {
            Edit::Remove => {
                items.remove(i);
            }
            Edit::Replace(b) => {
                items[i] = *b;
                i += 1;
            }
            Edit::Keep => {
                if let BlockItem::Stmt(s) = &mut items[i] {
                    edit_stmt(s, ctr, f);
                }
                i += 1;
            }
        }
    }
}

fn edit_stmt(s: &mut Stmt, ctr: &mut usize, f: &mut impl FnMut(usize, &BlockItem) -> Edit) {
    match s {
        Stmt::Block(items) | Stmt::Spawn { body: items, .. } => edit_items(items, ctr, f),
        Stmt::If(_, t, e) => {
            edit_stmt(t, ctr, f);
            if let Some(e) = e {
                edit_stmt(e, ctr, f);
            }
        }
        Stmt::While(_, b) | Stmt::For(_, _, _, b) => edit_stmt(b, ctr, f),
        _ => {}
    }
}

fn func_item_count(f: &FuncDefAst) -> usize {
    fn stmt(s: &Stmt) -> usize {
        match s {
            Stmt::Block(items) | Stmt::Spawn { body: items, .. } => {
                items.iter().map(item).sum::<usize>()
            }
            Stmt::If(_, t, e) => stmt(t) + e.as_deref().map_or(0, stmt),
            Stmt::While(_, b) | Stmt::For(_, _, _, b) => stmt(b),
            _ => 0,
        }
    }
    fn item(i: &BlockItem) -> usize {
        1 + match i {
            BlockItem::Decl(_) => 0,
            BlockItem::Stmt(s) => stmt(s),
        }
    }
    f.body.iter().map(item).sum()
}

/// Whether an item's subtree mentions `name` as an identifier. The check
/// rides on the debug rendering, where every identifier appears as a
/// quoted string — exact-match safe because generated names never contain
/// quotes.
fn mentions(item: &BlockItem, name: &str) -> bool {
    format!("{item:?}").contains(&format!("\"{name}\""))
}

/// Declared names in a function body, pre-order.
fn declared_names(f: &FuncDefAst) -> Vec<String> {
    let mut names = Vec::new();
    let mut body = f.body.clone();
    let mut ctr = 0;
    edit_items(&mut body, &mut ctr, &mut |_, item| {
        if let BlockItem::Decl(d) = item {
            names.push(d.name.clone());
        }
        Edit::Keep
    });
    names
}

/// Local simplification variants for one item; `variant` selects among
/// them. Returns `None` when the variant does not apply.
fn simplify(item: &BlockItem, variant: u32) -> Option<BlockItem> {
    match (item, variant) {
        // A spawn inlines to a plain block — the body only uses the
        // region handle and int captures, both still in scope. (A later
        // `join` with nothing outstanding is a no-op, and candidates
        // that break sema are rejected by `accept` anyway.)
        (BlockItem::Stmt(Stmt::Spawn { body, .. }), 0) => {
            Some(BlockItem::Stmt(Stmt::Block(body.clone())))
        }
        (BlockItem::Stmt(Stmt::If(_, t, _)), 0) => Some(BlockItem::Stmt((**t).clone())),
        (BlockItem::Stmt(Stmt::If(c, t, Some(_))), 1) => {
            Some(BlockItem::Stmt(Stmt::If(c.clone(), t.clone(), None)))
        }
        (BlockItem::Stmt(Stmt::While(_, b)), 0) | (BlockItem::Stmt(Stmt::For(_, _, _, b)), 0) => {
            Some(BlockItem::Stmt((**b).clone()))
        }
        (BlockItem::Decl(d), 2) => match (&d.ty, &d.init) {
            (TypeExpr::StructPtr { .. }, Some(init)) if *init != Expr::Null => {
                let mut d = d.clone();
                d.init = Some(Expr::Null);
                Some(BlockItem::Decl(d))
            }
            _ => None,
        },
        _ => None,
    }
}

fn accept(candidate: &Ast, interesting: &dyn Fn(&Ast) -> bool) -> bool {
    rc_lang::sema::check(candidate).is_ok() && interesting(candidate)
}

/// One greedy step: the first accepted single edit, or `None` at a local
/// minimum.
fn step(cur: &Ast, interesting: &dyn Fn(&Ast) -> bool) -> Option<Ast> {
    // 1. Drop a whole non-main function.
    for fi in 0..cur.funcs.len() {
        if cur.funcs[fi].name == "main" {
            continue;
        }
        let mut c = cur.clone();
        c.funcs.remove(fi);
        if accept(&c, interesting) {
            return Some(c);
        }
    }

    // 2a. Drop a global together with everything that mentions it.
    for gi in 0..cur.globals.len() {
        let name = cur.globals[gi].name.clone();
        let mut c = cur.clone();
        c.globals.remove(gi);
        for f in &mut c.funcs {
            let mut ctr = 0;
            edit_items(&mut f.body, &mut ctr, &mut |_, item| {
                if mentions(item, &name) {
                    Edit::Remove
                } else {
                    Edit::Keep
                }
            });
        }
        if accept(&c, interesting) {
            return Some(c);
        }
    }

    // 2b. Cascade-drop a local declaration and its uses.
    for fi in 0..cur.funcs.len() {
        for name in declared_names(&cur.funcs[fi]) {
            let mut c = cur.clone();
            let mut ctr = 0;
            edit_items(&mut c.funcs[fi].body, &mut ctr, &mut |_, item| {
                if mentions(item, &name) {
                    Edit::Remove
                } else {
                    Edit::Keep
                }
            });
            if accept(&c, interesting) {
                return Some(c);
            }
        }
    }

    // 3. ddmin: contiguous chunk removal, halving down to single items.
    for fi in 0..cur.funcs.len() {
        let n = func_item_count(&cur.funcs[fi]);
        let mut len = n.max(1) / 2;
        loop {
            if len == 0 {
                len = 1;
            }
            let mut start = 0;
            while start < n {
                let end = start + len;
                let mut c = cur.clone();
                let mut ctr = 0;
                edit_items(&mut c.funcs[fi].body, &mut ctr, &mut |idx, _| {
                    if idx >= start && idx < end {
                        Edit::Remove
                    } else {
                        Edit::Keep
                    }
                });
                if accept(&c, interesting) {
                    return Some(c);
                }
                start += len;
            }
            if len == 1 {
                break;
            }
            len /= 2;
        }
    }

    // 4. Local simplifications.
    for fi in 0..cur.funcs.len() {
        let n = func_item_count(&cur.funcs[fi]);
        for target in 0..n {
            for variant in 0..3u32 {
                let mut c = cur.clone();
                let mut changed = false;
                let mut ctr = 0;
                edit_items(&mut c.funcs[fi].body, &mut ctr, &mut |idx, item| {
                    if idx == target && !changed {
                        if let Some(repl) = simplify(item, variant) {
                            changed = true;
                            return Edit::Replace(Box::new(repl));
                        }
                    }
                    Edit::Keep
                });
                if changed && accept(&c, interesting) {
                    return Some(c);
                }
            }
        }
    }

    None
}

/// Minimises `ast` while `interesting` keeps holding.
///
/// The input itself must satisfy the predicate (debug-asserted). The
/// result is a 1-minimal program: no single edit from the families above
/// both stays well-formed and stays interesting.
pub fn shrink(ast: &Ast, interesting: &dyn Fn(&Ast) -> bool) -> Ast {
    debug_assert!(interesting(ast), "shrink input must be interesting");
    let mut cur = ast.clone();
    // Each accepted edit removes or strictly simplifies structure; the
    // cap is a belt-and-braces guard against a pathological predicate.
    for _ in 0..10_000 {
        match step(&cur, interesting) {
            Some(next) => cur = next,
            None => break,
        }
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::statement_count;
    use crate::oracle::{check_source, Violation};

    /// Oracle-backed predicate: the program (re-printed, so sites are
    /// re-minted) still produces a qs divergence.
    fn qs_diverges(ast: &Ast) -> bool {
        let src = rc_lang::pretty::print_ast(ast);
        match check_source(&src, 2_000_000) {
            Ok(report) => report
                .violations
                .iter()
                .any(|v| matches!(v, Violation::Divergence { config: "qs", .. })),
            Err(_) => false,
        }
    }

    #[test]
    fn shrinks_a_qs_divergence_to_its_core() {
        // A padded program whose only real defect is one cross-region
        // sameregion store.
        let src = "
struct node { int v; struct node *sameregion next; };

static int helper(int a, int b) {
    return a * b + 1;
}

int main() deletes {
    region r0 = newregion();
    region r1 = newregion();
    struct node *a = ralloc(r0, struct node);
    struct node *b = ralloc(r1, struct node);
    int acc = 0;
    int i;
    for (i = 0; i < 5; i = i + 1) {
        acc = acc + helper(i, 2);
    }
    a->v = 3;
    b->v = acc;
    b->next = a;
    acc = acc + b->v;
    deleteregion(r1);
    deleteregion(r0);
    return acc;
}
";
        let ast = rc_lang::parser::parse(src).expect("parses");
        assert!(qs_diverges(&ast), "the seed program must be interesting");
        let min = shrink(&ast, &qs_diverges);
        assert!(qs_diverges(&min), "shrinking must preserve the violation");
        let n = statement_count(&min);
        assert!(
            n <= 8,
            "expected a tight repro, got {n} statements:\n{}",
            rc_lang::pretty::print_ast(&min)
        );
        // The padding must be gone.
        assert!(min.funcs.iter().all(|f| f.name == "main"), "helper survived");
        let printed = rc_lang::pretty::print_ast(&min);
        assert!(!printed.contains("for ("), "loop survived:\n{printed}");
    }

    #[test]
    fn shrinks_spawn_padding_away() {
        // The defect is the same cross-region sameregion store; the
        // spawn/join task is pure padding the shrinker must strip (via
        // the cascade on `s0` or the spawn-to-block unwrap).
        let src = "
struct node { int v; struct node *sameregion next; };

int main() deletes {
    region r0 = newregion();
    region r1 = newregion();
    region s0 = newregion();
    struct node *a = ralloc(r0, struct node);
    struct node *b = ralloc(r1, struct node);
    spawn s0 {
        struct node *m = ralloc(s0, struct node);
        m->v = 4;
        assert(m->v == 4);
    }
    join;
    b->next = a;
    deleteregion(s0);
    deleteregion(r1);
    deleteregion(r0);
    return 0;
}
";
        let ast = rc_lang::parser::parse(src).expect("parses");
        assert!(qs_diverges(&ast), "the seed program must be interesting");
        let min = shrink(&ast, &qs_diverges);
        assert!(qs_diverges(&min), "shrinking must preserve the violation");
        let printed = rc_lang::pretty::print_ast(&min);
        assert!(!printed.contains("spawn"), "spawn survived:\n{printed}");
        assert!(!printed.contains("join"), "join survived:\n{printed}");
    }
}
