//! The differential oracle: one program, five allocator configurations,
//! eight families of assertions.
//!
//! 1. **Conformance** — the observable outcome (exit code / trap kind /
//!    assertion failure) is identical under `lea`, `GC`, `nq`, `qs` and
//!    `inf`. Outcomes are compared by *kind key* ([`outcome_key`]), not by
//!    full payload: runtime-error payloads embed heap addresses, which
//!    legitimately differ between allocators.
//! 2. **Inference soundness** — rerunning the program with per-site check
//!    counting on ([`rc_lang::RunConfig::counting_checks`]), every check
//!    site the rlang analysis eliminated must have a dynamic fire count
//!    of zero. A fired-but-eliminated site is a soundness bug in §5's
//!    constraint inference.
//! 3. **Heap hygiene** — every configuration's post-run audit (reference
//!    counts reconciled against a full heap scan) must pass.
//! 4. **Replay determinism** — rerunning the reference configuration
//!    yields byte-identical statistics and the same outcome; generated
//!    source is a pure function of the seed (checked by the driver).
//! 5. **Span well-formedness** — the replay runs record region lifecycle
//!    spans ([`rc_lang::RunConfig::with_spans`]); the resulting span tree
//!    must verify against the heap's own region table
//!    ([`region_rt::SpanTree::verification`]) and be identical between
//!    the two replays.
//! 6. **Restore fixpoint** — rerunning the baseline (`lea`) configuration
//!    with post-mortem snapshots on, every captured snapshot must pass
//!    [`region_rt::Heap::restore`]: the restored heap verifies, audits,
//!    and re-snapshots byte-identically. A checkpoint that cannot be
//!    turned back into a heap is forensics, not recovery.
//! 7. **Parallel equivalence** — for programs containing `spawn`, the
//!    baseline configuration is rerun under the seeded deterministic
//!    scheduler ([`rc_lang::RunConfig::det_sched`]); its outcome key must
//!    equal the sequential baseline's and its merged post-join heap must
//!    audit clean. Region ownership transfer makes task interleaving
//!    unobservable, so any disagreement is a scheduler or shard-merge
//!    bug.
//! 8. **Task-report well-formedness** — the same deterministic-scheduler
//!    run must hand back per-task reports that are an exact decomposition
//!    of the merged run: root first, every scheduler log balanced
//!    ([`region_rt::SchedLog::balanced`]), per-task cycles / steps /
//!    [`region_rt::Stats`] folding back to the merged totals, and the
//!    work/span analyzer ([`region_rt::critpath_analyze`]) accepting the
//!    reports with `span ≤ work == merged cycles`. A report set that does
//!    not re-compose is attribution the observability layer cannot trust.

use rc_lang::{CheckMode, Outcome, RunConfig};
use rlang::SiteId;

/// A violated oracle assertion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Two configurations disagreed on the observable outcome.
    Divergence {
        /// Name of the disagreeing configuration.
        config: &'static str,
        /// The baseline configuration's outcome key.
        baseline: String,
        /// The disagreeing configuration's outcome key.
        got: String,
    },
    /// A configuration's post-run heap audit failed.
    AuditFailure {
        /// Name of the configuration whose audit failed.
        config: &'static str,
        /// Audit error rendered for humans.
        detail: String,
    },
    /// A check site the analysis eliminated fired dynamically.
    UnsoundElimination {
        /// The check site (assignment site id).
        site: u32,
        /// How many times its predicate failed at runtime.
        fails: u64,
    },
    /// A rerun of the same program under the same configuration differed.
    NonDeterministic {
        /// What differed.
        detail: String,
    },
    /// The replay run's span tree failed structural verification against
    /// the heap's own region table.
    MalformedSpans {
        /// The first invariant the verifier found broken.
        detail: String,
    },
    /// A snapshot captured by the baseline run failed to restore as an
    /// exact fixpoint ([`region_rt::Heap::restore`]).
    RestoreDivergence {
        /// The snapshot's capture reason (`exit`, `gc` or `trap`).
        reason: String,
        /// The restore error, rendered for humans.
        detail: String,
    },
    /// A `spawn` program's outcome under the deterministic scheduler
    /// disagreed with the sequential baseline.
    ParallelDivergence {
        /// The sequential baseline's outcome key.
        baseline: String,
        /// The deterministic-scheduler outcome key.
        got: String,
    },
    /// The deterministic-scheduler run's per-task reports do not
    /// re-compose into the merged run (unbalanced scheduler log, telemetry
    /// that does not fold back, or a report set the critical-path analyzer
    /// rejects).
    TaskReportDivergence {
        /// The first broken invariant, rendered for humans.
        detail: String,
    },
}

impl Violation {
    /// A short machine-friendly tag (used in regression file names).
    pub fn kind(&self) -> &'static str {
        match self {
            Violation::Divergence { .. } => "divergence",
            Violation::AuditFailure { .. } => "audit",
            Violation::UnsoundElimination { .. } => "unsound-elim",
            Violation::NonDeterministic { .. } => "nondet",
            Violation::MalformedSpans { .. } => "malformed_spans",
            Violation::RestoreDivergence { .. } => "restore_divergence",
            Violation::ParallelDivergence { .. } => "parallel_divergence",
            Violation::TaskReportDivergence { .. } => "task_report_divergence",
        }
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::Divergence { config, baseline, got } => {
                write!(f, "divergence: {config} saw {got}, baseline saw {baseline}")
            }
            Violation::AuditFailure { config, detail } => {
                write!(f, "audit failure under {config}: {detail}")
            }
            Violation::UnsoundElimination { site, fails } => {
                write!(f, "eliminated check at site {site} fired {fails} time(s)")
            }
            Violation::NonDeterministic { detail } => {
                write!(f, "non-deterministic replay: {detail}")
            }
            Violation::MalformedSpans { detail } => {
                write!(f, "malformed span tree: {detail}")
            }
            Violation::RestoreDivergence { reason, detail } => {
                write!(f, "snapshot ({reason}) is not restorable: {detail}")
            }
            Violation::ParallelDivergence { baseline, got } => {
                write!(
                    f,
                    "parallel divergence: deterministic scheduler saw {got}, \
                     sequential baseline saw {baseline}"
                )
            }
            Violation::TaskReportDivergence { detail } => {
                write!(f, "task report divergence: {detail}")
            }
        }
    }
}

/// The five differential configurations, in comparison order. The first
/// entry (`lea`) is the baseline.
pub fn five_configs() -> Vec<(&'static str, RunConfig)> {
    vec![
        ("lea", RunConfig::lea()),
        ("gc", RunConfig::gc()),
        ("nq", RunConfig::rc(CheckMode::Nq)),
        ("qs", RunConfig::rc(CheckMode::Qs)),
        ("inf", RunConfig::rc_inf()),
    ]
}

/// The fixed baton seed assertion 7 hands the deterministic scheduler.
pub const PAR_SEED: u64 = 0x5eed_ba70_0007;

/// Resolves an oracle configuration name (as carried by
/// [`Violation::Divergence`]/[`Violation::AuditFailure`]) back to its
/// [`RunConfig`] — the counting rerun (`nq+count`) maps to plain `nq`
/// and the parallel rerun (`lea+det`) to plain `lea`, since neither the
/// tally nor the task schedule is part of the heap state a snapshot
/// shows.
pub fn config_by_name(name: &str) -> Option<RunConfig> {
    let name = name.strip_suffix("+count").unwrap_or(name);
    let name = name.strip_suffix("+det").unwrap_or(name);
    five_configs().into_iter().find(|(n, _)| *n == name).map(|(_, c)| c)
}

/// Whether the checked module contains a `spawn` anywhere (assertion 7's
/// trigger).
fn has_spawn(module: &rc_lang::hir::Module) -> bool {
    fn in_stmts(ss: &[rc_lang::hir::HStmt]) -> bool {
        use rc_lang::hir::HStmt;
        ss.iter().any(|s| match s {
            HStmt::Spawn { .. } => true,
            HStmt::If(_, t, e) => in_stmts(t) || in_stmts(e),
            HStmt::While(_, b) => in_stmts(b),
            HStmt::Expr(_) | HStmt::Return(_) | HStmt::Join => false,
        })
    }
    module.funcs.iter().any(|f| in_stmts(&f.body))
}

/// Assertion 8's predicate: the first way `r.task_reports` fails to be an
/// exact decomposition of the merged run, or `None` when the reports are
/// well-formed. Reports only exist once spawned children have been
/// joined, so an aborted run with none recorded is not a defect — but a
/// clean exit that spawned and still has none is.
fn task_report_defect(r: &rc_lang::RunResult) -> Option<String> {
    let reports = &r.task_reports;
    if reports.is_empty() {
        if matches!(r.outcome, Outcome::Exit(_)) && r.stats.sched_spawns > 0 {
            return Some(format!(
                "clean exit spawned {} task(s) but produced no task reports",
                r.stats.sched_spawns
            ));
        }
        return None;
    }
    if !reports[0].is_root() {
        return Some(format!("first report is task {}, not the root", reports[0].id.0));
    }
    for t in reports {
        if !t.sched.balanced() {
            return Some(format!("task {} has an unbalanced scheduler log", t.id.0));
        }
    }
    let cycle_sum: u64 = reports.iter().map(|t| t.cycles).sum();
    if cycle_sum != r.cycles {
        return Some(format!(
            "per-task cycles sum to {cycle_sum}, merged clock read {}",
            r.cycles
        ));
    }
    let step_sum: u64 = reports.iter().map(|t| t.steps).sum();
    if step_sum != r.steps {
        return Some(format!(
            "per-task steps sum to {step_sum}, merged run counted {}",
            r.steps
        ));
    }
    let folded = reports[1..]
        .iter()
        .fold(reports[0].stats.clone(), |acc, t| acc.merge(&t.stats));
    if folded.to_json().render() != r.stats.to_json().render() {
        return Some("per-task stats do not fold to the merged stats".to_string());
    }
    match region_rt::critpath_analyze(reports) {
        Ok(cp) => {
            if cp.work != r.cycles || cp.span > cp.work {
                return Some(format!(
                    "critical path broke its identities: work {} span {} cycles {}",
                    cp.work, cp.span, r.cycles
                ));
            }
        }
        Err(e) => return Some(format!("critical-path analyzer rejected the reports: {e}")),
    }
    None
}

/// Collapses an [`Outcome`] to an allocator-independent key. Abort and
/// trap payloads keep only the error *kind*: the full error carries
/// addresses and region identifiers that differ across backends.
pub fn outcome_key(o: &Outcome) -> String {
    match o {
        Outcome::Exit(code) => format!("exit:{code}"),
        Outcome::Aborted(e) => format!("abort:{}", e.kind_name()),
        Outcome::Trapped(e) => format!("trap:{}", e.kind_name()),
        Outcome::AssertFailed => "assert-failed".to_string(),
        Outcome::StepLimit => "step-limit".to_string(),
    }
}

/// Everything the oracle measured for one program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseReport {
    /// The baseline (`lea`) outcome key — what every config agreed on
    /// when `violations` is empty.
    pub outcome_key: String,
    /// Violated assertions, in detection order.
    pub violations: Vec<Violation>,
    /// Interpreter steps summed over every run (budget accounting).
    pub steps: u64,
    /// How many check sites the analysis eliminated.
    pub eliminated_sites: usize,
    /// Annotation-check predicates evaluated in the counting rerun.
    pub checks_counted: u64,
    /// Annotation-check predicates that failed in the counting rerun
    /// (across *all* sites, eliminated or not).
    pub checks_fired: u64,
}

impl CaseReport {
    /// Whether every oracle assertion held.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Runs the full oracle against one RC source text.
///
/// `step_budget` (0 = unlimited) bounds each individual run.
///
/// # Errors
///
/// Returns the compile error when the source does not compile — for
/// generated programs that is itself a harness bug, and callers treat it
/// as fatal rather than as a violation.
pub fn check_source(src: &str, step_budget: u64) -> Result<CaseReport, rc_lang::CompileError> {
    let compiled = rc_lang::prepare(src)?;
    let mut violations = Vec::new();
    let mut steps = 0u64;

    let budgeted = |mut c: RunConfig| {
        if step_budget > 0 {
            c.step_limit = step_budget;
        }
        c
    };

    // (1) + (3): five-way conformance with audited heaps.
    let mut baseline_key = String::new();
    for (name, config) in five_configs() {
        let r = rc_lang::run_audited(&compiled, &budgeted(config));
        steps += r.steps;
        let key = outcome_key(&r.outcome);
        if baseline_key.is_empty() {
            baseline_key = key;
        } else if key != baseline_key {
            violations.push(Violation::Divergence {
                config: name,
                baseline: baseline_key.clone(),
                got: key,
            });
        }
        match r.audit {
            Some(Err(e)) => violations.push(Violation::AuditFailure {
                config: name,
                detail: format!("{e:?}"),
            }),
            Some(Ok(())) => {}
            None => violations.push(Violation::AuditFailure {
                config: name,
                detail: "audit did not run".to_string(),
            }),
        }
    }

    // (7): parallel equivalence — spawn programs rerun under the seeded
    // deterministic scheduler; ownership transfer makes the interleaving
    // unobservable, so the outcome key must match the sequential
    // baseline and the merged post-join heap must still audit.
    if has_spawn(&compiled.module) {
        let det = budgeted(RunConfig::lea().det_sched(PAR_SEED));
        let r = rc_lang::run_audited(&compiled, &det);
        steps += r.steps;
        let key = outcome_key(&r.outcome);
        if key != baseline_key {
            violations.push(Violation::ParallelDivergence {
                baseline: baseline_key.clone(),
                got: key,
            });
        }
        // (8): the same run's per-task reports must re-compose into the
        // merged view exactly — they are the raw material every
        // attribution surface (critpath, trace-export, parallel-matrix)
        // is built from.
        if let Some(detail) = task_report_defect(&r) {
            violations.push(Violation::TaskReportDivergence { detail });
        }
        match r.audit {
            Some(Err(e)) => violations.push(Violation::AuditFailure {
                config: "lea+det",
                detail: format!("{e:?}"),
            }),
            Some(Ok(())) => {}
            None => violations.push(Violation::AuditFailure {
                config: "lea+det",
                detail: "audit did not run".to_string(),
            }),
        }
    }

    // (2): the counting rerun — observationally nq, but tallying every
    // annotation predicate per site.
    let counting = budgeted(RunConfig::rc(CheckMode::Nq).counting_checks());
    let r = rc_lang::run_audited(&compiled, &counting);
    steps += r.steps;
    let key = outcome_key(&r.outcome);
    if key != baseline_key {
        violations.push(Violation::Divergence {
            config: "nq+count",
            baseline: baseline_key.clone(),
            got: key,
        });
    }
    if let Some(Err(e)) = &r.audit {
        violations.push(Violation::AuditFailure {
            config: "nq+count",
            detail: format!("{e:?}"),
        });
    }
    let counter = r.check_counts.as_deref();
    let (checks_counted, checks_fired) =
        counter.map_or((0, 0), |c| (c.total_runs(), c.total_fails()));
    violations.extend(soundness_violations(
        &compiled.analysis.eliminated_sites,
        counter,
    ));

    // (4) + (5): replay the reference configuration with lifecycle spans
    // on; dynamic-event statistics and the span tree itself must be
    // byte-identical run to run, and the tree must verify against the
    // heap's region table.
    let inf = budgeted(RunConfig::rc_inf().with_spans());
    let a = rc_lang::run_audited(&compiled, &inf);
    let b = rc_lang::run_audited(&compiled, &inf);
    steps += a.steps + b.steps;
    if outcome_key(&a.outcome) != outcome_key(&b.outcome) {
        violations.push(Violation::NonDeterministic {
            detail: format!(
                "outcome {} vs {}",
                outcome_key(&a.outcome),
                outcome_key(&b.outcome)
            ),
        });
    } else if a.stats != b.stats {
        violations.push(Violation::NonDeterministic {
            detail: "dynamic-event statistics differ between identical runs".to_string(),
        });
    } else if a.spans != b.spans {
        violations.push(Violation::NonDeterministic {
            detail: "span trees differ between identical runs".to_string(),
        });
    }
    for r in [&a, &b] {
        match r.spans.as_deref().and_then(|t| t.verification()) {
            Some(Ok(())) => {}
            Some(Err(e)) => {
                violations.push(Violation::MalformedSpans { detail: e.clone() });
                break;
            }
            None => {
                violations.push(Violation::MalformedSpans {
                    detail: "span tree missing or never sealed".to_string(),
                });
                break;
            }
        }
    }

    // (6): restore fixpoint — every snapshot the baseline allocator
    // captures (GC pauses and the exit/trap state) must restore, which
    // transitively gates verification, audit, and byte-identical
    // re-capture.
    let lea_snap = budgeted(RunConfig::lea().with_snapshots());
    let r = rc_lang::run_audited(&compiled, &lea_snap);
    steps += r.steps;
    for snap in &r.snapshots {
        if let Err(e) = region_rt::Heap::restore(snap) {
            violations.push(Violation::RestoreDivergence {
                reason: snap.reason.as_str().to_string(),
                detail: e.to_string(),
            });
            break;
        }
    }

    Ok(CaseReport {
        outcome_key: baseline_key,
        violations,
        steps,
        eliminated_sites: compiled.analysis.eliminated_sites.len(),
        checks_counted,
        checks_fired,
    })
}

/// Oracle (2) in isolation: given the analysis' eliminated-site list and
/// the counting rerun's tallies, report every eliminated site that fired.
/// Exposed separately so the mutation tests can feed a *deliberately
/// broken* elimination list through the same code path.
pub fn soundness_violations(
    eliminated: &[SiteId],
    counter: Option<&region_rt::CheckCounter>,
) -> Vec<Violation> {
    let Some(counter) = counter else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for &SiteId(site) in eliminated {
        let fails = counter.fails(site);
        if fails > 0 {
            out.push(Violation::UnsoundElimination { site, fails });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIGURE1: &str = "
struct node { int v; struct node *sameregion next; };

static struct node *mk(region r, struct node *prev, int val) {
    struct node *n = ralloc(r, struct node);
    n->v = val;
    n->next = prev;
    return n;
}

int main() deletes {
    region r = newregion();
    struct node *head = null;
    int i;
    int acc = 0;
    for (i = 0; i < 5; i = i + 1) {
        head = mk(r, head, i);
    }
    while (head != null) {
        acc = acc + head->v;
        head = head->next;
    }
    head = null;
    deleteregion(r);
    return acc;
}
";

    #[test]
    fn figure1_is_conformant() {
        let report = check_source(FIGURE1, 0).expect("compiles");
        assert!(report.passed(), "violations: {:?}", report.violations);
        assert_eq!(report.outcome_key, "exit:10");
        assert!(report.eliminated_sites > 0, "figure 1's checks are inferable");
        assert!(report.checks_counted > 0);
        assert_eq!(report.checks_fired, 0);
    }

    #[test]
    fn qualifier_violation_diverges_under_qs() {
        // A sameregion store crossing regions: qs aborts, nq/lea/gc/inf
        // exit normally — the oracle must flag the divergence. The
        // referring region (r1, created later) is deleted first, so the
        // teardown itself stays legal under every config.
        let src = "
struct node { int v; struct node *sameregion next; };

int main() deletes {
    region r0 = newregion();
    region r1 = newregion();
    struct node *a = ralloc(r0, struct node);
    struct node *b = ralloc(r1, struct node);
    b->next = a;
    deleteregion(r1);
    deleteregion(r0);
    return 0;
}
";
        let report = check_source(src, 0).expect("compiles");
        assert!(!report.passed());
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::Divergence { config: "qs", .. })),
            "expected a qs divergence, got {:?}",
            report.violations
        );
        assert!(report.checks_fired > 0);
    }

    #[test]
    fn broken_elimination_list_is_caught() {
        // Feed the soundness oracle a list claiming the (actually unsafe)
        // site was eliminated; it must flag the fired site.
        let src = "
struct node { int v; struct node *sameregion next; };

int main() deletes {
    region r0 = newregion();
    region r1 = newregion();
    struct node *a = ralloc(r0, struct node);
    struct node *b = ralloc(r1, struct node);
    b->next = a;
    deleteregion(r1);
    deleteregion(r0);
    return 0;
}
";
        let compiled = rc_lang::prepare(src).expect("compiles");
        let counting = RunConfig::rc(CheckMode::Nq).counting_checks();
        let r = rc_lang::run_audited(&compiled, &counting);
        let counter = r.check_counts.as_deref().expect("counting was on");
        let all_sites: Vec<SiteId> = counter.iter().map(|(s, _)| SiteId(s)).collect();
        let vs = soundness_violations(&all_sites, Some(counter));
        assert!(
            vs.iter()
                .any(|v| matches!(v, Violation::UnsoundElimination { fails, .. } if *fails > 0)),
            "expected an unsound elimination, got {vs:?}"
        );
    }

    #[test]
    fn span_oracle_tags_are_stable() {
        let v = Violation::MalformedSpans { detail: "span 3 never closed".into() };
        assert_eq!(v.kind(), "malformed_spans");
        assert!(v.to_string().contains("malformed span tree"));
    }

    #[test]
    fn restore_oracle_tags_are_stable() {
        let v = Violation::RestoreDivergence {
            reason: "exit".into(),
            detail: "corrupt".into(),
        };
        assert_eq!(v.kind(), "restore_divergence");
        assert!(v.to_string().contains("not restorable"));
    }

    #[test]
    fn baseline_snapshots_restore_for_a_leaking_program() {
        // The program exits with objects still live in the malloc-emulated
        // region, so the exit snapshot carries non-trivial retained state
        // the restore oracle must reconstruct.
        let src = "
struct node { int v; struct node *next; };

int main() {
    region r = newregion();
    struct node *head = null;
    int i;
    for (i = 0; i < 20; i = i + 1) {
        struct node *n = ralloc(r, struct node);
        n->v = i;
        n->next = head;
        head = n;
    }
    return 0;
}
";
        let report = check_source(src, 0).expect("compiles");
        assert!(
            !report
                .violations
                .iter()
                .any(|v| matches!(v, Violation::RestoreDivergence { .. })),
            "restore oracle violated: {:?}",
            report.violations
        );
    }

    #[test]
    fn parallel_oracle_tags_are_stable() {
        let v = Violation::ParallelDivergence {
            baseline: "exit:7".into(),
            got: "trap:region_moved".into(),
        };
        assert_eq!(v.kind(), "parallel_divergence");
        assert!(v.to_string().contains("parallel divergence"));
        assert!(v.to_string().contains("exit:7"));
    }

    #[test]
    fn task_report_oracle_tag_is_stable() {
        // The campaign's shrink predicate and regression file names key
        // on this tag; it must never drift.
        let v = Violation::TaskReportDivergence { detail: "task 3 has an unbalanced scheduler log".into() };
        assert_eq!(v.kind(), "task_report_divergence");
        assert!(v.to_string().contains("task report divergence"));
        assert!(v.to_string().contains("task 3"));
    }

    #[test]
    fn task_report_defect_catches_a_tampered_report_set() {
        // A healthy spawn run has no defect; perturbing one task's cycle
        // count must surface as a fold mismatch against the merged clock.
        let compiled = rc_lang::prepare(
            "
int main() deletes {
    region s0 = newregion();
    spawn s0 { int w = 1; assert(w == 1); }
    join;
    deleteregion(s0);
    return 0;
}
",
        )
        .expect("compiles");
        let cfg = RunConfig::lea().det_sched(PAR_SEED);
        let mut r = rc_lang::run_audited(&compiled, &cfg);
        assert!(!r.task_reports.is_empty(), "the det run keeps per-task reports");
        assert_eq!(task_report_defect(&r), None, "healthy run has no defect");
        r.task_reports[1].cycles += 1;
        let defect = task_report_defect(&r).expect("tampered cycles must be caught");
        assert!(defect.contains("merged clock"), "got: {defect}");
    }

    #[test]
    fn det_config_alias_resolves_to_the_baseline() {
        let c = config_by_name("lea+det").expect("lea+det resolves");
        assert_eq!(c.backend, RunConfig::lea().backend);
    }

    #[test]
    fn spawn_program_passes_the_full_oracle() {
        // Two disjoint task regions, each building and checking its own
        // list — the shape the generator emits. Assertion 7 runs here
        // (the module contains spawn) and must agree with the baseline.
        let src = "
struct node { int v; struct node *sameregion next; };

int main() deletes {
    region s0 = newregion();
    region s1 = newregion();
    spawn s0 {
        struct node *h = null;
        int q;
        for (q = 0; q < 4; q = q + 1) {
            struct node *m = ralloc(s0, struct node);
            m->v = q;
            m->next = h;
            h = m;
        }
        if (h != null) { assert(h->v == 3); }
    }
    spawn s1 {
        struct node *h = null;
        struct node *m = ralloc(s1, struct node);
        m->v = 9;
        m->next = h;
        h = m;
        assert(h->v == 9);
    }
    join;
    deleteregion(s1);
    deleteregion(s0);
    return 21;
}
";
        let report = check_source(src, 0).expect("compiles");
        assert!(report.passed(), "violations: {:?}", report.violations);
        assert_eq!(report.outcome_key, "exit:21");
    }

    #[test]
    fn spawned_task_failure_stays_conformant() {
        // The failing assert fires inside the task; every configuration
        // (and the deterministic scheduler) must agree on assert-failed.
        let src = "
struct node { int v; struct node *sameregion next; };

int main() deletes {
    region s0 = newregion();
    spawn s0 {
        struct node *m = ralloc(s0, struct node);
        m->v = 5;
        assert(m->v == 6);
    }
    join;
    deleteregion(s0);
    return 0;
}
";
        let report = check_source(src, 0).expect("compiles");
        assert!(report.passed(), "violations: {:?}", report.violations);
        assert_eq!(report.outcome_key, "assert-failed");
    }

    #[test]
    fn outcome_keys_are_stable_tags() {
        assert_eq!(outcome_key(&Outcome::Exit(7)), "exit:7");
        assert_eq!(outcome_key(&Outcome::AssertFailed), "assert-failed");
        assert_eq!(outcome_key(&Outcome::StepLimit), "step-limit");
    }
}
