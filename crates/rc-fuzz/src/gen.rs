//! Grammar-directed generation of well-typed RC programs.
//!
//! The generator builds surface [`Ast`]s directly (no string templates)
//! and is *correct by construction*: every program it emits in clean mode
//! compiles, runs to a normal exit under every allocator configuration,
//! never fails an annotation check, and tears its regions down in an
//! order that satisfies both the reference-count and the subregion
//! deletion rules. That discipline is what lets the differential oracle
//! demand *strict* agreement across configurations.
//!
//! Grammar coverage: regions, subregions, the traditional region, all
//! three pointer qualifiers plus unannotated (counted) pointers, global
//! variables, `deletes` functions, local and region int arrays
//! (`rarrayalloc`), bounded `for`/`while` loops, `if` with null guards,
//! straight and recursive calls, `regionof`, `assert`, and (unless
//! [`GenConfig::spawn`] is off) `spawn`/`join` tasks.
//!
//! ## The invariants behind "clean"
//!
//! - **sameregion** stores only use a source allocated in the object's
//!   region (or null). **parentptr** sources live in an ancestor-or-self
//!   region along the generated `newsubregion` chain. **traditional**
//!   sources live in the traditional region.
//! - Unannotated (counted) cross-region stores `obj.plain = val` are only
//!   emitted when the object's region is deleted *before* the value's
//!   (regions are deleted in LIFO creation order, and `deleteregion`
//!   unscans outgoing references), when the value lives in the
//!   traditional region (never deleted), or when the store is `null`.
//! - Global pointer stores are reference-counted against the globals
//!   block, so the teardown nulls every pointer global before the first
//!   `deleteregion`.
//! - Loops are bounded by literal counters, recursion by a decreasing
//!   depth argument, and all arithmetic in the dialect is total
//!   (wrapping; division by zero yields zero), so every program
//!   terminates with a deterministic exit code.
//! - **spawn** bodies are disjoint by construction: each task gets a
//!   dedicated region (`s0`, `s1`, …) created just before its `spawn`
//!   and never touched by any other statement arm (node and `rarray`
//!   allocation only ever target the pre-spawn regions), captures only
//!   that region handle plus read-only int scalars, builds and checks a
//!   private list entirely inside its own shard, and the single `join`
//!   lands before the region teardown — so the spawned regions delete
//!   LIFO with everything else.
//!
//! With [`GenConfig::violations`] set, the generator *additionally*
//! plants qualifier-violating stores (for example a cross-region
//! `sameregion` store) whose victim region order still tears down
//! cleanly. These programs abort under `qs` by design; they exist to
//! exercise the inference-soundness oracle and the shrinker, not the
//! five-way differential gate.

use rc_lang::ast::*;

use crate::rng::Rng;

/// Generation knobs. A program is a pure function of `(seed, GenConfig)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenConfig {
    /// Scale knob: roughly proportional to statement count.
    pub size: u32,
    /// Plant qualifier-violating stores (mutation/shrinker mode; such
    /// programs abort under `qs` by design).
    pub violations: bool,
    /// Allow `spawn`/`join` task sections (on by default; a coin flip
    /// per program decides whether one is actually emitted).
    pub spawn: bool,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig { size: 6, violations: false, spawn: true }
    }
}

/// Generates one well-typed program.
pub fn generate(seed: u64, cfg: &GenConfig) -> Ast {
    Gen::new(seed, cfg).program()
}

/// Generates one program and renders it to RC source. The bytes are a
/// pure function of `(seed, cfg)` — the replay-determinism oracle holds
/// the harness to exactly that.
pub fn generate_source(seed: u64, cfg: &GenConfig) -> String {
    let mut out = format!(
        "// rc-fuzz seed={} size={}{}\n",
        seed,
        cfg.size,
        if cfg.violations { " violations=1" } else { "" }
    );
    out.push_str(&rc_lang::pretty::print_ast(&generate(seed, cfg)));
    out
}

/// Counts block items (declarations and statements, including nested
/// ones) across all functions — the size metric the shrinker minimises.
pub fn statement_count(ast: &Ast) -> usize {
    fn stmt(s: &Stmt) -> usize {
        match s {
            Stmt::Block(items) | Stmt::Spawn { body: items, .. } => {
                items.iter().map(item).sum::<usize>()
            }
            Stmt::If(_, t, e) => stmt(t) + e.as_deref().map_or(0, stmt),
            Stmt::While(_, b) | Stmt::For(_, _, _, b) => stmt(b),
            _ => 0,
        }
    }
    fn item(i: &BlockItem) -> usize {
        1 + match i {
            BlockItem::Decl(_) => 0,
            BlockItem::Stmt(s) => stmt(s),
        }
    }
    ast.funcs.iter().flat_map(|f| f.body.iter()).map(item).sum()
}

/// Where a pointer value provably lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Reg {
    /// The traditional region.
    Trad,
    /// Generated region `regions[i]`.
    R(usize),
}

#[derive(Debug)]
struct RegionInfo {
    name: String,
    parent: Option<usize>,
}

#[derive(Debug)]
struct NodeVar {
    name: String,
    region: Reg,
    /// May hold null (chain variables); never used as an unguarded store
    /// object.
    nullable: bool,
}

struct Gen<'a> {
    rng: Rng,
    cfg: &'a GenConfig,
    regions: Vec<RegionInfo>,
    nodes: Vec<NodeVar>,
    /// Mutable int locals usable as assignment targets.
    int_vars: Vec<String>,
    /// Local int arrays `(name, len)`.
    arrays: Vec<(String, i64)>,
    /// Region int arrays from `rarrayalloc` `(name, len)`.
    rarrays: Vec<(String, i64)>,
    /// Loop counters (used only by the loop arms).
    counters: Vec<String>,
    has_globals: bool,
    global_node_stored: bool,
    use_helper: bool,
    use_recur: bool,
    use_mk: bool,
    use_spawn: bool,
    called_helper: bool,
    called_recur: bool,
    called_mk: bool,
    /// Index of the chain variable (region-pinned, nullable) when mk is in
    /// play.
    chain: Option<usize>,
}

// ---- small AST builders ------------------------------------------------

fn var(n: &str) -> Expr {
    Expr::Var(n.to_string(), 0)
}

fn int(n: i64) -> Expr {
    Expr::Int(n)
}

fn bin(op: BinOp, l: Expr, r: Expr) -> Expr {
    Expr::Bin(op, Box::new(l), Box::new(r))
}

fn assign(lhs: Expr, rhs: Expr) -> Expr {
    Expr::Assign { lhs: Box::new(lhs), rhs: Box::new(rhs), site: SiteId(0), line: 0 }
}

fn field(obj: Expr, name: &str) -> Expr {
    Expr::Field { obj: Box::new(obj), name: name.to_string(), line: 0 }
}

fn index(arr: Expr, idx: Expr) -> Expr {
    Expr::Index { arr: Box::new(arr), idx: Box::new(idx), line: 0 }
}

fn call(name: &str, args: Vec<Expr>) -> Expr {
    Expr::Call { name: name.to_string(), args, line: 0 }
}

fn estmt(e: Expr) -> BlockItem {
    BlockItem::Stmt(Stmt::Expr(e))
}

fn node_ptr(qual: Qual) -> TypeExpr {
    TypeExpr::StructPtr { name: "node".to_string(), qual }
}

fn decl(ty: TypeExpr, name: &str, init: Option<Expr>) -> BlockItem {
    BlockItem::Decl(VarDecl { ty, name: name.to_string(), array_len: None, init, line: 0 })
}

fn ralloc_node(region: Expr) -> Expr {
    Expr::Ralloc { region: Box::new(region), ty: node_ptr(Qual::None), line: 0 }
}

impl<'a> Gen<'a> {
    fn new(seed: u64, cfg: &'a GenConfig) -> Gen<'a> {
        Gen {
            rng: Rng::new(seed),
            cfg,
            regions: Vec::new(),
            nodes: Vec::new(),
            int_vars: Vec::new(),
            arrays: Vec::new(),
            rarrays: Vec::new(),
            counters: Vec::new(),
            has_globals: false,
            global_node_stored: false,
            use_helper: false,
            use_recur: false,
            use_mk: false,
            use_spawn: false,
            called_helper: false,
            called_recur: false,
            called_mk: false,
            chain: None,
        }
    }

    fn program(mut self) -> Ast {
        self.has_globals = self.rng.chance(60);
        self.use_helper = self.rng.chance(70);
        self.use_recur = self.rng.chance(55);
        self.use_mk = self.rng.chance(70);
        self.use_spawn = self.cfg.spawn && self.rng.chance(50);

        let main = self.gen_main();

        let mut funcs = Vec::new();
        if self.called_helper {
            let f = self.with_only_globals(|g| g.gen_helper());
            funcs.push(f);
        }
        if self.called_recur {
            let f = self.with_only_globals(|g| g.gen_recur());
            funcs.push(f);
        }
        if self.called_mk {
            funcs.push(self.gen_mk());
        }
        funcs.push(main);

        let mut globals = Vec::new();
        if self.has_globals {
            globals.push(GlobalDef {
                ty: TypeExpr::Int,
                name: "gcount".to_string(),
                array_len: None,
                line: 0,
            });
            globals.push(GlobalDef {
                ty: TypeExpr::Int,
                name: "gslots".to_string(),
                array_len: Some(4),
                line: 0,
            });
            globals.push(GlobalDef {
                ty: node_ptr(Qual::None),
                name: "gnode".to_string(),
                array_len: None,
                line: 0,
            });
        }

        Ast { structs: vec![self.node_struct()], globals, funcs }
    }

    fn node_struct(&self) -> StructDef {
        StructDef {
            name: "node".to_string(),
            fields: vec![
                (TypeExpr::Int, "v".to_string()),
                (node_ptr(Qual::SameRegion), "next".to_string()),
                (node_ptr(Qual::ParentPtr), "up".to_string()),
                (node_ptr(Qual::Traditional), "tr".to_string()),
                (node_ptr(Qual::None), "plain".to_string()),
            ],
            line: 0,
        }
    }

    // ---- region topology ----------------------------------------------

    /// Whether generated region `a` is an ancestor of (or equal to) `b`.
    fn ancestor_or_self(&self, a: usize, b: usize) -> bool {
        let mut cur = Some(b);
        while let Some(i) = cur {
            if i == a {
                return true;
            }
            cur = self.regions[i].parent;
        }
        false
    }

    /// Whether a *counted* store of a pointer to `val` into an object in
    /// `obj` leaves the teardown deletable: regions are deleted in LIFO
    /// creation order, and deleting a region unscans (releases) its
    /// outgoing references, so a reference is safe when the referring
    /// region dies no later than the referent.
    fn counted_ref_ok(&self, obj: Reg, val: Reg) -> bool {
        match (obj, val) {
            (_, Reg::Trad) => true,               // the traditional region never dies
            (Reg::Trad, Reg::R(_)) => false,      // would pin the referent forever
            (Reg::R(i), Reg::R(j)) => i >= j,     // i created later → deleted first
        }
    }

    fn region_expr(&self, r: Reg) -> Expr {
        match r {
            Reg::Trad => var("tr"),
            Reg::R(i) => var(&self.regions[i].name),
        }
    }

    // ---- int expressions ----------------------------------------------

    /// One leaf of an int expression. `extra` contributes in-scope atoms
    /// such as loop counters or function parameters.
    fn int_atom(&mut self, extra: &[Expr]) -> Expr {
        let mut arms: Vec<u32> = vec![0, 0]; // literals twice: keep them common
        if !extra.is_empty() {
            arms.push(1);
            arms.push(1);
        }
        let readable: Vec<usize> =
            (0..self.nodes.len()).filter(|&i| !self.nodes[i].nullable).collect();
        if !readable.is_empty() {
            arms.push(2);
        }
        if !self.arrays.is_empty() {
            arms.push(3);
        }
        if self.has_globals {
            arms.push(4);
        }
        match *self.rng.pick(&arms) {
            1 => self.rng.pick(extra).clone(),
            2 => {
                let i = *self.rng.pick(&readable);
                field(var(&self.nodes[i].name.clone()), "v")
            }
            3 => {
                let (name, len) = self.rng.pick(&self.arrays).clone();
                index(var(&name), int(self.rng.range(0, len - 1)))
            }
            4 => {
                if self.rng.chance(50) {
                    var("gcount")
                } else {
                    index(var("gslots"), int(self.rng.range(0, 3)))
                }
            }
            _ => {
                // Negative literals print as `(-n)` and reparse as unary
                // minus, so emit that shape directly to keep the
                // parse→pretty→parse round trip structural.
                let v = self.rng.range(-9, 9);
                if v < 0 {
                    Expr::Un(UnOp::Neg, Box::new(int(-v)))
                } else {
                    int(v)
                }
            }
        }
    }

    /// A small arithmetic/logical expression. All operators in the
    /// dialect are total (wrapping arithmetic, zero for division by
    /// zero), so no value constraints are needed.
    fn int_expr(&mut self, depth: u32, extra: &[Expr]) -> Expr {
        if depth == 0 || self.rng.chance(35) {
            return self.int_atom(extra);
        }
        let ops = [
            BinOp::Add,
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::Div,
            BinOp::Rem,
            BinOp::Lt,
            BinOp::Eq,
            BinOp::And,
            BinOp::Or,
        ];
        let op = *self.rng.pick(&ops);
        let l = self.int_expr(depth - 1, extra);
        let r = self.int_expr(depth - 1, extra);
        if self.rng.chance(10) {
            Expr::Un(if self.rng.chance(50) { UnOp::Neg } else { UnOp::Not }, Box::new(bin(op, l, r)))
        } else {
            bin(op, l, r)
        }
    }

    // ---- functions -----------------------------------------------------

    /// Hides `main`'s locals while generating a standalone function body
    /// (globals stay visible — they really are in scope everywhere).
    fn with_only_globals<T>(&mut self, f: impl FnOnce(&mut Gen<'a>) -> T) -> T {
        let nodes = std::mem::take(&mut self.nodes);
        let arrays = std::mem::take(&mut self.arrays);
        let rarrays = std::mem::take(&mut self.rarrays);
        let out = f(self);
        self.nodes = nodes;
        self.arrays = arrays;
        self.rarrays = rarrays;
        out
    }

    fn gen_helper(&mut self) -> FuncDefAst {
        let extra = [var("a"), var("b")];
        let mut body = Vec::new();
        if self.rng.chance(50) {
            let e = self.int_expr(2, &extra);
            body.push(decl(TypeExpr::Int, "t", Some(e)));
            let cond = bin(BinOp::Gt, var("t"), self.int_atom(&extra));
            let ret_t = Stmt::Return(Some(var("t")), 0);
            let e2 = self.int_expr(1, &[var("a"), var("b"), var("t")]);
            body.push(BlockItem::Stmt(Stmt::If(
                cond,
                Box::new(Stmt::Block(vec![BlockItem::Stmt(ret_t)])),
                None,
            )));
            body.push(BlockItem::Stmt(Stmt::Return(Some(e2), 0)));
        } else {
            let e = self.int_expr(2, &extra);
            body.push(BlockItem::Stmt(Stmt::Return(Some(e), 0)));
        }
        FuncDefAst {
            name: "helper".to_string(),
            is_static: true,
            deletes: false,
            ret: Some(TypeExpr::Int),
            params: vec![(TypeExpr::Int, "a".to_string()), (TypeExpr::Int, "b".to_string())],
            body,
            line: 0,
        }
    }

    fn gen_recur(&mut self) -> FuncDefAst {
        let base = int(self.rng.range(0, 5));
        let step = self.int_expr(1, &[var("n")]);
        let body = vec![
            BlockItem::Stmt(Stmt::If(
                bin(BinOp::Le, var("n"), int(0)),
                Box::new(Stmt::Block(vec![BlockItem::Stmt(Stmt::Return(Some(base), 0))])),
                None,
            )),
            BlockItem::Stmt(Stmt::Return(
                Some(bin(BinOp::Add, step, call("recur", vec![bin(BinOp::Sub, var("n"), int(1))]))),
                0,
            )),
        ];
        FuncDefAst {
            name: "recur".to_string(),
            is_static: true,
            deletes: false,
            ret: Some(TypeExpr::Int),
            params: vec![(TypeExpr::Int, "n".to_string())],
            body,
            line: 0,
        }
    }

    /// The Figure 1 constructor idiom: allocate in the region argument,
    /// link via the `sameregion` field. Call sites always pass `prev`
    /// allocated in `r` (or null), so the store is clean — and, when the
    /// call sites are consistent, the §5 interprocedural inference can
    /// eliminate its check.
    fn gen_mk(&mut self) -> FuncDefAst {
        let mut body = vec![
            decl(node_ptr(Qual::None), "n", Some(ralloc_node(var("r")))),
            estmt(assign(field(var("n"), "v"), var("val"))),
            estmt(assign(field(var("n"), "next"), var("prev"))),
        ];
        if self.rng.chance(40) {
            // prev is in r (or null): an internal counted store, also
            // clean.
            body.push(estmt(assign(field(var("n"), "plain"), var("prev"))));
        }
        body.push(BlockItem::Stmt(Stmt::Return(Some(var("n")), 0)));
        FuncDefAst {
            name: "mk".to_string(),
            is_static: true,
            deletes: false,
            ret: Some(node_ptr(Qual::None)),
            params: vec![
                (TypeExpr::Region, "r".to_string()),
                (node_ptr(Qual::None), "prev".to_string()),
                (TypeExpr::Int, "val".to_string()),
            ],
            body,
            line: 0,
        }
    }

    // ---- main ----------------------------------------------------------

    fn gen_main(&mut self) -> FuncDefAst {
        let size = self.cfg.size.max(1);
        let mut body = Vec::new();
        body.push(decl(TypeExpr::Int, "acc", Some(int(0))));

        // Regions: a root plus a mix of siblings and subregions.
        let n_regions = 1 + self.rng.below(3.min(1 + size as u64 / 3)) as usize;
        for i in 0..n_regions {
            let name = format!("r{i}");
            let (parent, init) = if i > 0 && self.rng.chance(55) {
                let p = self.rng.below(i as u64) as usize;
                (Some(p), Expr::NewSubregion(Box::new(var(&self.regions[p].name))))
            } else {
                (None, Expr::NewRegion)
            };
            body.push(decl(TypeExpr::Region, &name, Some(init)));
            self.regions.push(RegionInfo { name, parent });
        }

        // Spawned tasks: each gets a fresh region whose subtree it owns
        // exclusively until the single `join`. The task regions are
        // *appended* after the `n_regions` ordinary ones, and every other
        // arm draws regions via `below(n_regions)`, so nothing outside
        // the spawn body ever touches them; the LIFO teardown deletes
        // them first, which is legal once the join has merged the shards
        // back. Bodies capture only the task's region handle and the
        // read-only int `spv`, and assert their own list internally —
        // shards are separate heaps, so the parent cannot inspect
        // child-built data after the join.
        if self.use_spawn {
            let spv = self.rng.range(1, 7);
            body.push(decl(TypeExpr::Int, "spv", Some(int(spv))));
            let tasks = 1 + self.rng.below(2) as usize;
            for t in 0..tasks {
                let rname = format!("s{t}");
                body.push(decl(TypeExpr::Region, &rname, Some(Expr::NewRegion)));
                self.regions.push(RegionInfo { name: rname.clone(), parent: None });
                let bound = self.rng.range(2, 6);
                let loop_body = vec![
                    decl(node_ptr(Qual::None), "m", Some(ralloc_node(var(&rname)))),
                    estmt(assign(field(var("m"), "v"), bin(BinOp::Add, var("q"), var("spv")))),
                    estmt(assign(field(var("m"), "next"), var("h"))),
                    estmt(assign(var("h"), var("m"))),
                    estmt(assign(var("w"), bin(BinOp::Add, var("w"), field(var("m"), "v")))),
                ];
                let sbody = vec![
                    decl(node_ptr(Qual::None), "h", Some(Expr::Null)),
                    decl(TypeExpr::Int, "w", Some(int(0))),
                    decl(TypeExpr::Int, "q", None),
                    BlockItem::Stmt(Stmt::For(
                        Some(assign(var("q"), int(0))),
                        Some(bin(BinOp::Lt, var("q"), int(bound))),
                        Some(assign(var("q"), bin(BinOp::Add, var("q"), int(1)))),
                        Box::new(Stmt::Block(loop_body)),
                    )),
                    BlockItem::Stmt(Stmt::If(
                        bin(BinOp::Ne, var("h"), Expr::Null),
                        Box::new(Stmt::Block(vec![estmt(Expr::Assert(
                            Box::new(bin(
                                BinOp::Eq,
                                field(var("h"), "v"),
                                int(bound - 1 + spv),
                            )),
                            0,
                        ))])),
                        None,
                    )),
                ];
                body.push(BlockItem::Stmt(Stmt::Spawn { region: rname, body: sbody, line: 0 }));
            }
            body.push(BlockItem::Stmt(Stmt::Join(0)));
        }

        // The traditional-region handle and a node inside it.
        let use_trad = self.rng.chance(55);
        if use_trad {
            body.push(decl(TypeExpr::Region, "tr", Some(Expr::TraditionalRegion)));
            body.push(decl(node_ptr(Qual::None), "t0", Some(ralloc_node(var("tr")))));
            self.nodes.push(NodeVar { name: "t0".to_string(), region: Reg::Trad, nullable: false });
        }

        // Node allocations, some via `regionof` of an earlier node.
        let n_nodes = 2 + self.rng.below(2 + size as u64 / 2) as usize;
        for i in 0..n_nodes {
            let name = format!("n{i}");
            let (region, rexpr) = if !self.nodes.is_empty() && self.rng.chance(25) {
                let b = self.rng.pick_idx(&self.nodes);
                let nb = &self.nodes[b];
                (nb.region, Expr::RegionOf(Box::new(var(&nb.name)), 0))
            } else {
                let r = self.rng.below(n_regions as u64) as usize;
                (Reg::R(r), var(&self.regions[r].name))
            };
            body.push(decl(node_ptr(Qual::None), &name, Some(ralloc_node(rexpr))));
            self.nodes.push(NodeVar { name, region, nullable: false });
            if self.rng.chance(20) {
                let n = self.nodes.last().expect("just pushed").name.clone();
                body.push(estmt(Expr::Assert(
                    Box::new(bin(BinOp::Ne, var(&n), Expr::Null)),
                    0,
                )));
            }
        }

        // Int locals, arrays, loop counters.
        let n_ints = 1 + self.rng.below(1 + size as u64 / 3) as usize;
        for i in 0..n_ints {
            let name = format!("k{i}");
            let e = self.int_expr(1, &[]);
            body.push(decl(TypeExpr::Int, &name, Some(e)));
            self.int_vars.push(name);
        }
        if self.rng.chance(60) {
            let len = self.rng.range(2, 6);
            body.push(BlockItem::Decl(VarDecl {
                ty: TypeExpr::Int,
                name: "xs".to_string(),
                array_len: Some(len as u32),
                init: None,
                line: 0,
            }));
            self.arrays.push(("xs".to_string(), len));
        }
        if self.rng.chance(50) {
            let len = self.rng.range(3, 8);
            let r = self.rng.below(n_regions as u64) as usize;
            let rexpr = var(&self.regions[r].name);
            body.push(decl(
                TypeExpr::IntPtr(Qual::None),
                "d0",
                Some(Expr::RarrayAlloc {
                    region: Box::new(rexpr),
                    count: Box::new(int(len)),
                    ty: TypeExpr::Int,
                    line: 0,
                }),
            ));
            self.rarrays.push(("d0".to_string(), len));
        }
        for c in 0..2 {
            let name = format!("i{c}");
            body.push(decl(TypeExpr::Int, &name, None));
            self.counters.push(name);
        }

        // A region-pinned chain variable for the mk idiom.
        if self.use_mk {
            let r = self.rng.below(n_regions as u64) as usize;
            body.push(decl(node_ptr(Qual::None), "chain", Some(Expr::Null)));
            self.nodes.push(NodeVar {
                name: "chain".to_string(),
                region: Reg::R(r),
                nullable: true,
            });
            self.chain = Some(self.nodes.len() - 1);
        }

        // The statement soup.
        let n_stmts = 4 + (size as u64 * 3 + self.rng.below(1 + size as u64)) as usize;
        for _ in 0..n_stmts {
            let s = self.gen_stmt(0);
            body.push(s);
        }

        // Teardown: release counted globals, then delete regions LIFO.
        if self.global_node_stored {
            body.push(estmt(assign(var("gnode"), Expr::Null)));
        }
        for i in (0..self.regions.len()).rev() {
            let name = self.regions[i].name.clone();
            body.push(estmt(Expr::DeleteRegion(Box::new(var(&name)), 0)));
        }
        body.push(BlockItem::Stmt(Stmt::Return(Some(var("acc")), 0)));

        FuncDefAst {
            name: "main".to_string(),
            is_static: false,
            deletes: true,
            ret: Some(TypeExpr::Int),
            params: Vec::new(),
            body,
            line: 0,
        }
    }

    // ---- statements ----------------------------------------------------

    /// Indices of non-nullable node variables (safe unguarded store
    /// objects).
    fn solid_nodes(&self) -> Vec<usize> {
        (0..self.nodes.len()).filter(|&i| !self.nodes[i].nullable).collect()
    }

    fn gen_stmt(&mut self, depth: u32) -> BlockItem {
        #[derive(Clone, Copy, PartialEq)]
        enum Arm {
            Acc,
            IntVar,
            FieldInt,
            SameRegion,
            ParentPtr,
            Traditional,
            Plain,
            GuardedNext,
            ArrayWrite,
            RarrayWrite,
            ForLoop,
            WhileLoop,
            Helper,
            Recur,
            ChainGrow,
            GlobalInt,
            GlobalNode,
            Violation,
        }
        let solid = self.solid_nodes();
        let mut arms = vec![Arm::Acc, Arm::Acc];
        if !self.int_vars.is_empty() {
            arms.push(Arm::IntVar);
        }
        if !solid.is_empty() {
            arms.extend([
                Arm::FieldInt,
                Arm::FieldInt,
                Arm::SameRegion,
                Arm::SameRegion,
                Arm::ParentPtr,
                Arm::Plain,
                Arm::GuardedNext,
            ]);
            if self.nodes.iter().any(|n| n.region == Reg::Trad) {
                arms.push(Arm::Traditional);
            }
        }
        if !self.arrays.is_empty() {
            arms.push(Arm::ArrayWrite);
        }
        if !self.rarrays.is_empty() {
            arms.push(Arm::RarrayWrite);
        }
        if depth == 0 {
            arms.extend([Arm::ForLoop, Arm::WhileLoop]);
        }
        if self.use_helper {
            arms.push(Arm::Helper);
        }
        if self.use_recur {
            arms.push(Arm::Recur);
        }
        if self.use_mk && self.chain.is_some() {
            arms.extend([Arm::ChainGrow, Arm::ChainGrow]);
        }
        if self.has_globals {
            arms.push(Arm::GlobalInt);
            if !solid.is_empty() {
                arms.push(Arm::GlobalNode);
            }
        }
        if self.cfg.violations && solid.len() >= 2 {
            // Heavily weighted: violation programs exist to make checks
            // fire.
            arms.extend([Arm::Violation; 6]);
        }

        match *self.rng.pick(&arms) {
            Arm::Acc => {
                let e = self.int_expr(2, &[]);
                estmt(assign(var("acc"), bin(BinOp::Add, var("acc"), e)))
            }
            Arm::IntVar => {
                let name = self.rng.pick(&self.int_vars).clone();
                let e = self.int_expr(2, &[]);
                estmt(assign(var(&name), e))
            }
            Arm::FieldInt => {
                let i = *self.rng.pick(&solid);
                let name = self.nodes[i].name.clone();
                let e = self.int_expr(1, &[]);
                estmt(assign(field(var(&name), "v"), e))
            }
            Arm::SameRegion => {
                let i = *self.rng.pick(&solid);
                let obj = self.nodes[i].name.clone();
                let region = self.nodes[i].region;
                let mut sources: Vec<Expr> = vec![Expr::Null, var(&obj)];
                for n in &self.nodes {
                    if n.region == region {
                        sources.push(var(&n.name));
                    }
                }
                let src = self.rng.pick(&sources).clone();
                estmt(assign(field(var(&obj), "next"), src))
            }
            Arm::ParentPtr => {
                let i = *self.rng.pick(&solid);
                let obj = self.nodes[i].name.clone();
                let mut sources: Vec<Expr> = vec![Expr::Null, var(&obj)];
                if let Reg::R(ri) = self.nodes[i].region {
                    for n in &self.nodes {
                        if let Reg::R(rj) = n.region {
                            if self.ancestor_or_self(rj, ri) {
                                sources.push(var(&n.name));
                            }
                        }
                    }
                }
                let src = self.rng.pick(&sources).clone();
                estmt(assign(field(var(&obj), "up"), src))
            }
            Arm::Traditional => {
                let i = *self.rng.pick(&solid);
                let obj = self.nodes[i].name.clone();
                let mut sources: Vec<Expr> = vec![Expr::Null];
                for n in &self.nodes {
                    if n.region == Reg::Trad {
                        sources.push(var(&n.name));
                    }
                }
                let src = self.rng.pick(&sources).clone();
                estmt(assign(field(var(&obj), "tr"), src))
            }
            Arm::Plain => {
                let i = *self.rng.pick(&solid);
                let obj = self.nodes[i].name.clone();
                let oreg = self.nodes[i].region;
                let mut sources: Vec<Expr> = vec![Expr::Null];
                for n in &self.nodes {
                    if !n.nullable && self.counted_ref_ok(oreg, n.region) {
                        sources.push(var(&n.name));
                    }
                }
                let src = self.rng.pick(&sources).clone();
                estmt(assign(field(var(&obj), "plain"), src))
            }
            Arm::GuardedNext => {
                let i = *self.rng.pick(&solid);
                let obj = self.nodes[i].name.clone();
                let read = field(var(&obj), "next");
                let cond = bin(BinOp::Ne, read.clone(), Expr::Null);
                let use_stmt = if self.rng.chance(60) {
                    estmt(assign(
                        var("acc"),
                        bin(BinOp::Add, var("acc"), field(read.clone(), "v")),
                    ))
                } else {
                    // The §5.2 heap-read idiom: re-store what was read.
                    estmt(assign(field(var(&obj), "next"), read.clone()))
                };
                BlockItem::Stmt(Stmt::If(cond, Box::new(Stmt::Block(vec![use_stmt])), None))
            }
            Arm::ArrayWrite => {
                let (name, len) = self.rng.pick(&self.arrays).clone();
                let idx = self.rng.range(0, len - 1);
                let e = self.int_expr(1, &[]);
                estmt(assign(index(var(&name), int(idx)), e))
            }
            Arm::RarrayWrite => {
                let (name, len) = self.rng.pick(&self.rarrays).clone();
                let idx = self.rng.range(0, len - 1);
                let e = self.int_expr(1, &[]);
                estmt(assign(index(var(&name), int(idx)), e))
            }
            Arm::ForLoop => {
                let c = self.rng.pick(&self.counters).clone();
                let bound = self.rng.range(2, 8);
                let n_body = 1 + self.rng.below(3) as usize;
                let mut items = Vec::new();
                for _ in 0..n_body {
                    items.push(self.gen_loop_body_stmt(&c));
                }
                BlockItem::Stmt(Stmt::For(
                    Some(assign(var(&c), int(0))),
                    Some(bin(BinOp::Lt, var(&c), int(bound))),
                    Some(assign(var(&c), bin(BinOp::Add, var(&c), int(1)))),
                    Box::new(Stmt::Block(items)),
                ))
            }
            Arm::WhileLoop => {
                let c = self.rng.pick(&self.counters).clone();
                let start = self.rng.range(2, 6);
                let inner = self.gen_loop_body_stmt(&c);
                BlockItem::Stmt(Stmt::Block(vec![
                    estmt(assign(var(&c), int(start))),
                    BlockItem::Stmt(Stmt::While(
                        bin(BinOp::Gt, var(&c), int(0)),
                        Box::new(Stmt::Block(vec![
                            estmt(assign(var(&c), bin(BinOp::Sub, var(&c), int(1)))),
                            inner,
                        ])),
                    )),
                ]))
            }
            Arm::Helper => {
                self.called_helper = true;
                let a = self.int_expr(1, &[]);
                let b = self.int_expr(1, &[]);
                estmt(assign(
                    var("acc"),
                    bin(BinOp::Add, var("acc"), call("helper", vec![a, b])),
                ))
            }
            Arm::Recur => {
                self.called_recur = true;
                let depth_arg = int(self.rng.range(0, 7));
                estmt(assign(
                    var("acc"),
                    bin(BinOp::Add, var("acc"), call("recur", vec![depth_arg])),
                ))
            }
            Arm::ChainGrow => {
                self.called_mk = true;
                let ci = self.chain.expect("chain arm gated on chain");
                let (cname, rexpr) = {
                    let c = &self.nodes[ci];
                    (c.name.clone(), self.region_expr(c.region))
                };
                if self.rng.chance(50) && depth == 0 {
                    // Figure 1: grow the chain in a bounded loop.
                    let c = self.rng.pick(&self.counters).clone();
                    let bound = self.rng.range(2, 8);
                    let grow = estmt(assign(
                        var(&cname),
                        call("mk", vec![rexpr, var(&cname), var(&c)]),
                    ));
                    let read = BlockItem::Stmt(Stmt::If(
                        bin(BinOp::Ne, var(&cname), Expr::Null),
                        Box::new(Stmt::Block(vec![estmt(assign(
                            var("acc"),
                            bin(BinOp::Add, var("acc"), field(var(&cname), "v")),
                        ))])),
                        None,
                    ));
                    BlockItem::Stmt(Stmt::Block(vec![
                        BlockItem::Stmt(Stmt::For(
                            Some(assign(var(&c), int(0))),
                            Some(bin(BinOp::Lt, var(&c), int(bound))),
                            Some(assign(var(&c), bin(BinOp::Add, var(&c), int(1)))),
                            Box::new(Stmt::Block(vec![grow])),
                        )),
                        read,
                    ]))
                } else {
                    let v = self.int_expr(1, &[]);
                    estmt(assign(var(&cname), call("mk", vec![rexpr, var(&cname), v])))
                }
            }
            Arm::GlobalInt => {
                if self.rng.chance(50) {
                    let e = self.int_expr(1, &[]);
                    estmt(assign(var("gcount"), e))
                } else {
                    let e = self.int_expr(1, &[]);
                    estmt(assign(index(var("gslots"), int(self.rng.range(0, 3))), e))
                }
            }
            Arm::GlobalNode => {
                self.global_node_stored = true;
                let mut sources: Vec<Expr> = vec![Expr::Null];
                for &i in &solid {
                    sources.push(var(&self.nodes[i].name));
                }
                let src = self.rng.pick(&sources).clone();
                estmt(assign(var("gnode"), src))
            }
            Arm::Violation => self.gen_violation(&solid),
        }
    }

    /// A qualifier-violating store whose *reference-count* consequences
    /// still tear down cleanly (the referring region dies first), so the
    /// program exits normally under `nq` and the counting mode; only the
    /// planted check fails.
    fn gen_violation(&mut self, solid: &[usize]) -> BlockItem {
        // Collect (obj, src) pairs in distinct regions with obj's region
        // deleted no later than src's.
        let mut pairs = Vec::new();
        for &i in solid {
            for &j in solid {
                if self.nodes[i].region != self.nodes[j].region
                    && self.counted_ref_ok(self.nodes[i].region, self.nodes[j].region)
                {
                    pairs.push((i, j));
                }
            }
        }
        let Some(&(i, j)) = pairs.get(self.rng.below(pairs.len().max(1) as u64) as usize)
        else {
            // No cross-region pair available; fall back to a trivially
            // violating traditional store from a generated region.
            let i = solid[0];
            let name = self.nodes[i].name.clone();
            return estmt(assign(field(var(&name), "tr"), var(&name)));
        };
        let obj = self.nodes[i].name.clone();
        let src = self.nodes[j].name.clone();
        let f = if self.nodes[j].region == Reg::Trad {
            // Cross into the traditional region: violates sameregion.
            "next"
        } else {
            *self.rng.pick(&["next", "tr"])
        };
        estmt(assign(field(var(&obj), f), var(&src)))
    }

    /// Loop bodies reuse the simple arms only (no nested loops beyond
    /// depth 1), with the counter available as an int atom.
    fn gen_loop_body_stmt(&mut self, counter: &str) -> BlockItem {
        let extra = [var(counter)];
        let solid = self.solid_nodes();
        let mut arms: Vec<u32> = vec![0, 0];
        if !solid.is_empty() {
            arms.extend([1, 2]);
        }
        if !self.rarrays.is_empty() {
            arms.push(3);
        }
        if !self.arrays.is_empty() {
            arms.push(4);
        }
        match *self.rng.pick(&arms) {
            1 => {
                let i = *self.rng.pick(&solid);
                let name = self.nodes[i].name.clone();
                let e = self.int_expr(1, &extra);
                estmt(assign(field(var(&name), "v"), e))
            }
            2 => {
                let i = *self.rng.pick(&solid);
                let obj = self.nodes[i].name.clone();
                let region = self.nodes[i].region;
                let mut sources: Vec<Expr> = vec![Expr::Null, var(&obj)];
                for n in &self.nodes {
                    if n.region == region && !n.nullable {
                        sources.push(var(&n.name));
                    }
                }
                let src = self.rng.pick(&sources).clone();
                estmt(assign(field(var(&obj), "next"), src))
            }
            3 => {
                let (name, len) = self.rng.pick(&self.rarrays).clone();
                let e = self.int_expr(1, &extra);
                let idx = bin(BinOp::Rem, var(counter), int(len));
                // counter >= 0, so counter % len is in bounds.
                estmt(assign(index(var(&name), idx), e))
            }
            4 => {
                let (name, len) = self.rng.pick(&self.arrays).clone();
                let e = self.int_expr(1, &extra);
                let idx = bin(BinOp::Rem, var(counter), int(len));
                estmt(assign(index(var(&name), idx), e))
            }
            _ => {
                let e = self.int_expr(1, &extra);
                estmt(assign(var("acc"), bin(BinOp::Add, var("acc"), e)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::default();
        for seed in 0..16 {
            assert_eq!(generate_source(seed, &cfg), generate_source(seed, &cfg));
        }
    }

    #[test]
    fn generated_programs_compile() {
        let cfg = GenConfig::default();
        for seed in 0..64 {
            let src = generate_source(seed, &cfg);
            rc_lang::compile(&src)
                .unwrap_or_else(|e| panic!("seed {seed} does not compile: {e}\n{src}"));
        }
    }

    #[test]
    fn violation_mode_compiles_too() {
        let cfg = GenConfig { size: 6, violations: true, spawn: true };
        for seed in 0..32 {
            let src = generate_source(seed, &cfg);
            rc_lang::compile(&src)
                .unwrap_or_else(|e| panic!("seed {seed} does not compile: {e}\n{src}"));
        }
    }

    #[test]
    fn sizes_scale_with_the_knob() {
        let small = generate(1, &GenConfig { size: 2, violations: false, spawn: true });
        let large = generate(1, &GenConfig { size: 20, violations: false, spawn: true });
        assert!(statement_count(&large) > statement_count(&small));
    }

    #[test]
    fn default_sweep_reaches_spawn_and_the_knob_disables_it() {
        let on = GenConfig::default();
        let hits = (0..64)
            .filter(|&seed| generate_source(seed, &on).contains("spawn "))
            .count();
        assert!(hits >= 8, "only {hits}/64 default-config seeds emitted spawn");
        let off = GenConfig { spawn: false, ..GenConfig::default() };
        for seed in 0..64 {
            let src = generate_source(seed, &off);
            assert!(!src.contains("spawn "), "spawn=false still emitted spawn:\n{src}");
        }
    }
}
