//! Quickstart: compile and run the paper's Figure 1 program.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Builds a region-allocated list, frees it with one `deleteregion`, and
//! shows what the runtime did: how many checks the region type system
//! eliminated, and what reference counting cost.

use rc_regions::lang::{prepare, run, CheckMode, Outcome, RunConfig};

const FIGURE_1: &str = r#"
    // Figure 1 of the paper: build a list and its contents in a single
    // region, consume it, then free everything at once.
    struct finfo { int size; };
    struct rlist {
        struct rlist *sameregion next;
        struct finfo *sameregion data;
    };

    int main() deletes {
        struct rlist *rl;
        struct rlist *last = null;
        region r = newregion();
        int i;
        for (i = 0; i < 1000; i = i + 1) {
            rl = ralloc(r, struct rlist);
            rl->data = ralloc(r, struct finfo);
            rl->data->size = i;
            rl->next = last;
            last = rl;
        }
        // output_rlist(last):
        int total = 0;
        while (last != null) {
            total = total + last->data->size;
            last = last->next;
        }
        deleteregion(r);
        return total;
    }
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let compiled = prepare(FIGURE_1)?;

    println!("== Figure 1 under RC (annotations + static check elimination) ==");
    let inf = run(&compiled, &RunConfig::rc(CheckMode::Inf).traced());
    let Outcome::Exit(code) = inf.outcome else {
        panic!("unexpected outcome: {:?}", inf.outcome);
    };
    println!("exit code (sum 0..1000)      : {code}");
    println!("virtual time (instructions)  : {}", inf.cycles);
    print!("{}", inf.stats);

    // The run above was traced; fold the event stream into a per-site
    // profile (see docs/OBSERVABILITY.md).
    if let Some(profile) = inf.profile() {
        println!("\n== Telemetry profile of the same run ==");
        print!("{}", profile.text_report("figure1"));
    }

    println!("\n== Same program with annotations ignored (the paper's `nq`) ==");
    let nq = run(&compiled, &RunConfig::rc(CheckMode::Nq));
    println!("refcount updates             : {}", nq.stats.rc_updates_full + nq.stats.rc_updates_same);
    println!("virtual time (instructions)  : {}", nq.cycles);
    let saved = 100.0 * (nq.cycles as f64 - inf.cycles as f64) / nq.cycles as f64;
    println!("annotations + inference saved: {saved:.1}% of execution time");

    println!("\nEvery sameregion store in the loop was proven safe, so the");
    println!("instrumented run does no per-store work at all — the paper's");
    println!("central result, reproduced.");
    Ok(())
}
