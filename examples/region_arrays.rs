//! The program Walker–Morrisett's static region type system *cannot*
//! type, running safely under RC — the expressivity argument of the
//! paper's §2:
//!
//! ```c
//! region r[n];
//! struct data *d[m];
//! for (i = 0; i < n; i++) r[i] = newregion();
//! for (i = 0; i < m; i++) d[i] = ralloc(r[random(0, n)], ...);
//! ```
//!
//! "There is a type for r, but no type for d in Walker and Morrisett's
//! type system … one of our benchmarks contains a list of nested
//! environments with each environment allocated in its own region."
//!
//! ```text
//! cargo run --example region_arrays
//! ```

use rc_regions::lang::{prepare, run, Outcome, RunConfig};

const PROGRAM: &str = r#"
    struct data { int v; };
    region r[4];
    struct data *d[16];
    int rng;

    static int random(int m) {
        rng = (rng * 1103515245 + 12345) % 2147483647;
        if (rng < 0) { rng = -rng; }
        return rng % m;
    }

    int main() deletes {
        rng = 20010617;
        int i;
        for (i = 0; i < 4; i = i + 1) {
            r[i] = newregion();
        }
        // Objects land in *statically unknowable* regions: there is no
        // type for d in a static region system, but RC types it with an
        // existential (∃ρ'. data[ρ']@ρ') and stays safe dynamically.
        for (i = 0; i < 16; i = i + 1) {
            d[i] = ralloc(r[random(4)], struct data);
            d[i]->v = i;
        }
        int sum = 0;
        for (i = 0; i < 16; i = i + 1) {
            // regionof recovers the region at runtime.
            struct data *twin = ralloc(regionof(d[i]), struct data);
            twin->v = d[i]->v * 2;
            sum = sum + twin->v;
        }
        // Regions with external references refuse to die…
        int refused = 0;
        for (i = 0; i < 4; i = i + 1) {
            region dead = r[i];
            if (deleteregion(dead) != 0) {
                refused = refused + 1;
            }
        }
        // …until the references are cleared.
        for (i = 0; i < 16; i = i + 1) {
            d[i] = null;
        }
        for (i = 0; i < 4; i = i + 1) {
            region dead = r[i];
            r[i] = null;
            deleteregion(dead);
        }
        assert(sum == 240);
        return refused;
    }
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let compiled = prepare(PROGRAM)?;

    // Under the `Fail` semantics deleteregion reports instead of aborting,
    // so the program can count the refusals itself.
    let mut cfg = RunConfig::rc_inf();
    cfg.delete_semantics = rc_regions::lang::DeleteSemantics::Fail;
    let r = run(&compiled, &cfg);
    let Outcome::Exit(refused) = r.outcome else {
        panic!("unexpected outcome: {:?}", r.outcome)
    };
    println!("regions that refused deletion while the d[] table pointed in: {refused}/4");
    println!("(all four deleted cleanly once the table was cleared)");
    println!("reference-count updates performed: {}", r.stats.rc_updates_full);
    println!("\nThis is the §2 program that has no type in Walker–Morrisett's");
    println!("static system: RC types d[] existentially and enforces safety");
    println!("with the per-region reference counts instead.");
    Ok(())
}
