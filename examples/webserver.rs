//! A web-server-shaped workload: regions per connection, subregions per
//! request, `parentptr` back-links — and a demonstration that RC catches
//! the dangling-pointer bug that arenas would silently allow.
//!
//! ```text
//! cargo run --example webserver
//! ```

use rc_regions::lang::{prepare, run, Outcome, RunConfig};
use rc_regions::rt::RtError;

const SERVER: &str = r#"
    struct hdr { int key; int val; struct hdr *sameregion next; };
    struct req {
        int id;
        struct hdr *sameregion hdrs;
        struct req *parentptr parent;
    };
    struct req *session_cache[4];

    static int serve(region connr, int id) deletes {
        region reqr = newsubregion(connr);
        struct req *r = ralloc(reqr, struct req);
        r->id = id;
        int i;
        for (i = 0; i < 5; i = i + 1) {
            struct hdr *h = ralloc(regionof(r), struct hdr);
            h->key = i;
            h->val = id * 10 + i;
            h->next = r->hdrs;
            r->hdrs = h;
        }
        // An internal redirect: subrequest in a subregion, pointing UP.
        region sub = newsubregion(reqr);
        struct req *s = ralloc(sub, struct req);
        s->id = id * 100;
        s->parent = r;        // parentptr: sub ≤ reqr, statically verified
        int sum = s->parent->id;
        struct hdr *h = r->hdrs;
        while (h != null) { sum = sum + h->val; h = h->next; }
        s = null;
        h = null;
        deleteregion(sub);
        r = null;
        deleteregion(reqr);
        return sum;
    }

    int main() deletes {
        int total = 0;
        int c;
        for (c = 0; c < 50; c = c + 1) {
            region connr = newregion();
            total = (total + serve(connr, c)) % 1000000;
            total = (total + serve(connr, c + 1)) % 1000000;
            deleteregion(connr);
        }
        return total;
    }
"#;

/// The bug: a request object is parked in a global session cache, then
/// its region is deleted. Classic arenas would leave a dangling pointer;
/// RC refuses the deletion.
const SERVER_WITH_BUG: &str = r#"
    struct req { int id; };
    struct req *session_cache[4];

    int main() deletes {
        region reqr = newregion();
        struct req *r = ralloc(reqr, struct req);
        r->id = 7;
        session_cache[0] = r;     // counted: the cache now pins the region
        r = null;
        deleteregion(reqr);       // ← RC aborts here instead of dangling
        return session_cache[0]->id;
    }
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Serving 100 requests across 50 connections ==");
    let ok = prepare(SERVER)?;
    let r = run(&ok, &RunConfig::rc_inf());
    println!("outcome: {:?}", r.outcome);
    println!(
        "regions: {} created, {} deleted (per-connection + per-request + per-subrequest)",
        r.stats.regions_created, r.stats.regions_deleted
    );
    println!("parentptr checks executed: {}", r.stats.checks_parentptr);
    assert!(matches!(r.outcome, Outcome::Exit(_)));

    println!("\n== The dangling-cache bug ==");
    let bug = prepare(SERVER_WITH_BUG)?;
    let r = run(&bug, &RunConfig::rc_inf());
    match r.outcome {
        Outcome::Aborted(RtError::DeleteWithLiveRefs { rc, .. }) => {
            println!("RC refused the deletion: {rc} live external reference(s).");
            println!("An unsafe arena library would have freed the page and");
            println!("left session_cache[0] dangling.");
        }
        other => panic!("expected a refused deletion, got {other:?}"),
    }

    // Under the unsafe `norc` configuration the deletion goes through and
    // the later cache read touches freed memory (our simulated heap
    // detects the wild pointer; real hardware would corrupt silently).
    let unsafe_run = run(&bug, &RunConfig::norc());
    println!(
        "\nUnder norc (reference counting disabled) the same program: {:?}",
        unsafe_run.outcome
    );
    Ok(())
}
