//! Reruns one paper benchmark under all five Figure 7 configurations and
//! all four Figure 8 check regimes, printing the comparison the paper's
//! bar charts show.
//!
//! ```text
//! cargo run --release --example allocator_shootout [workload] [scale]
//! ```
//!
//! Workloads: cfrac grobner mudlle lcc moss tile rc apache (default lcc).

use rc_regions::lang::{run, RunConfig};
use rc_regions::workloads::driver::prepare_workload;
use rc_regions::workloads::{by_name, Scale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(String::as_str).unwrap_or("lcc");
    let scale = Scale(args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4));
    let w = by_name(name).unwrap_or_else(|| {
        eprintln!("unknown workload `{name}`; try: cfrac grobner mudlle lcc moss tile rc apache");
        std::process::exit(1);
    });

    println!("== {} (scale {}) — Figure 7: allocator comparison ==", w.name, scale.0);
    let compiled = prepare_workload(&w, scale);
    let mut lea_cycles = 0u64;
    for (cfg_name, cfg) in RunConfig::figure7() {
        let r = run(&compiled, &cfg);
        if cfg_name == "lea" {
            lea_cycles = r.cycles;
        }
        let rel = if lea_cycles > 0 { r.cycles as f64 / lea_cycles as f64 } else { 1.0 };
        let bar = "#".repeat((rel * 30.0) as usize);
        println!("{cfg_name:>5}  {:>12} cycles  {bar}", r.cycles);
    }

    println!("\n== Figure 8: check regimes under RC ==");
    let mut inf_stats = None;
    for (cfg_name, cfg) in RunConfig::figure8() {
        let r = run(&compiled, &cfg);
        let dynamic = r.stats.rc_cycles + r.stats.check_cycles + r.stats.unscan_cycles;
        let pct = 100.0 * dynamic as f64 / r.cycles as f64;
        println!(
            "{cfg_name:>5}  {:>12} cycles  refcount+check overhead {pct:>5.1}%  \
             (checks run: {})",
            r.cycles,
            r.stats.checks_sameregion + r.stats.checks_parentptr + r.stats.checks_traditional,
        );
        if cfg_name == "inf" {
            inf_stats = Some(r.stats);
        }
    }

    if let Some(stats) = inf_stats {
        println!("\n== Runtime counters for the inf run ==");
        print!("{stats}");
    }
}
