//! A tour of the RC compiler pipeline: parse → typecheck → translate to
//! rlang → infer constraints → per-site verdicts → execute.
//!
//! ```text
//! cargo run --example compiler_pipeline
//! ```
//!
//! Shows, for each annotated assignment in an lcc-style program, whether
//! the §4.3 constraint inference eliminated its runtime check — including
//! the two idioms from §5.2 that defeat the analysis (array reads, global
//! regions) and the ones that succeed (`regionof`, consistent constructor
//! call sites).

use rc_regions::lang::{compile, prepare, run, RunConfig};
use rc_regions::types::SiteId;

const PROGRAM: &str = r#"
    struct node { int v; struct node *sameregion next; };
    struct node *spill[8];

    // Consistent call sites: the interprocedural idiom that verifies.
    static struct node *cons(region r, int v, struct node *rest) {
        struct node *n = ralloc(r, struct node);
        n->v = v;
        n->next = rest;                          // site A: verified
        return n;
    }

    int main() {
        region r = newregion();
        struct node *list = null;
        int i;
        for (i = 0; i < 10; i = i + 1) {
            list = cons(r, i, list);
        }
        // The regionof idiom: verified.
        struct node *extra = ralloc(regionof(list), struct node);
        extra->next = list;                      // site B: verified
        // The array idiom: "nothing is known about objects accessed from
        // arbitrary arrays" — the check stays.
        spill[3] = extra;
        struct node *fetched = spill[3];
        struct node *tail = ralloc(r, struct node);
        tail->next = fetched;                    // site C: runtime check
        spill[3] = null;
        return list->v + tail->next->v;
    }
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Phase 1-2: parse + typecheck.
    let module = compile(PROGRAM)?;
    println!("parsed {} structs, {} globals, {} functions",
        module.structs.len(), module.globals.len(), module.funcs.len());

    // Phase 3-4: translate to rlang and run the inference.
    let compiled = prepare(PROGRAM)?;
    let analysis = &compiled.analysis;
    println!("\nconstraint inference converged in {} round(s)", analysis.rounds);
    println!("check sites: {} total, {} proven safe",
        analysis.site_count(), analysis.safe_count());

    // Per-site verdicts with the flow state the analysis saw.
    let mut sites: Vec<SiteId> = analysis.site_safe.keys().copied().collect();
    sites.sort();
    println!("\n{:<8} {:<10} flow state at the check", "site", "verdict");
    for site in sites {
        let verdict = if analysis.is_safe(site) { "SAFE" } else { "check" };
        let state = analysis
            .site_states
            .get(&site)
            .map(|s| s.to_string())
            .unwrap_or_default();
        let state: String = if state.chars().count() > 60 {
            let cut: String = state.chars().take(60).collect();
            format!("{cut}…")
        } else {
            state
        };
        println!("{:<8} {:<10} {}", format!("#{}", site.0), verdict, state);
    }

    // Phase 5: execute under `inf` — eliminated checks do no work.
    let result = run(&compiled, &RunConfig::rc_inf());
    println!("\nexecution: {:?}", result.outcome);
    println!("checks executed at runtime : {}", result.stats.checks_sameregion);
    println!("statically-safe stores     : {}", result.stats.assigns_safe);
    Ok(())
}
